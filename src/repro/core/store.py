"""Sharded zero-copy columnar artifact store (memmap-able benchmarks).

The JSON envelope (:func:`~repro.core.reliability.write_artifact`) is great
for integrity but poor for serving: loading a benchmark parses every tree
array out of text, allocates private copies per process, and pays the full
cost up front even if only one surrogate is ever queried.  This module is
the storage layer behind ``AccelNASBench.save(format="columnar")``:

* **Columnar shards** — every model array (the flat
  ``feature/threshold/left/right/value`` node arrays in
  :class:`~repro.surrogates.tree.TreeEnsemblePredictor` layout, SVR/GP dual
  coefficients, plus dataset value/arch-key columns sharded by row range)
  is one contiguous little-endian binary file under ``shards/``, written
  atomically (:func:`~repro.core.reliability.atomic_write_bytes`).
* **JSON manifest** — ``manifest.json`` carries the schema name + version,
  per-model specs, and per-shard dtype/shape/sha256/nbytes, wrapped in the
  standard checksummed artifact envelope, so the PR-3 integrity guarantees
  carry over unchanged: every failure mode surfaces as an
  :class:`~repro.core.reliability.ArtifactIntegrityError` naming the path
  and the exact reason.
* **Zero-copy loading** — shards are memmapped read-only, so N serving
  processes share one page cache; tree ensembles reconstruct their
  predictor directly from the stored flat arrays (no per-tree ``from_dict``
  loop), and each device surrogate loads lazily on its first query.
* **Telemetry** — ``store.model_hits`` / ``store.model_misses`` /
  ``store.mapped_bytes`` gauges via :mod:`repro.obs` (out of band, gated).

Cheap structural checks (existence, declared dtype, byte size) run at map
time; full sha256 verification of every shard is explicit — ``verify()`` /
``python -m repro.cli verify`` — because hashing would fault in every page
and defeat the lazy cold start.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections.abc import Mapping
from pathlib import Path

import numpy as np

import repro.obs as obs
from repro.core.benchmark import AccelNASBench
from repro.core.dataset import BenchmarkDataset
from repro.core.reliability import (
    ArtifactIntegrityError,
    ARTIFACT_ENVELOPE_KEYS,
    atomic_write_bytes,
    payload_checksum,
    read_artifact,
    write_artifact,
)
from repro.searchspace.features import FeatureEncoder
from repro.searchspace.mnasnet import ArchSpec
from repro.surrogates.serialize import (
    ARRAY_DTYPES,
    regressor_from_arrays,
    regressor_to_arrays,
)

BENCHMARK_STORE_SCHEMA = "anb-columnar-benchmark"
DATASET_STORE_SCHEMA = "anb-columnar-dataset"
STORE_SCHEMA_VERSION = 1
MANIFEST_NAME = "manifest.json"
DEFAULT_SHARD_ROWS = 2048

_ALLOWED_DTYPES = ("float64", "int64", "int32", "int16", "uint8")


def is_columnar_store(path: str | Path) -> bool:
    """Whether ``path`` is a columnar store directory (has a manifest)."""
    return (Path(path) / MANIFEST_NAME).is_file()


class ArtifactVerificationError(ArtifactIntegrityError):
    """A full verification pass found one or more corrupt shards.

    Unlike the fail-fast load-path checks, verification sweeps *every*
    shard and reports the complete damage in one pass — the hot-reload
    validation path needs the full picture, and an operator repairing a
    store should not have to re-run ``verify`` once per corrupt shard.

    Attributes:
        errors: One :class:`ArtifactIntegrityError` per failed shard, in
            sorted shard order.
    """

    def __init__(
        self, path: str | Path, errors: list[ArtifactIntegrityError]
    ) -> None:
        reason = f"{len(errors)} shard(s) failed verification: " + "; ".join(
            f"{err.path}: {err.reason}" for err in errors
        )
        super().__init__(path, reason)
        self.errors = list(errors)


# ---------------------------------------------------------------------------
# Shard I/O
# ---------------------------------------------------------------------------


def write_shard(root: Path, rel: str, array: np.ndarray) -> dict:
    """Write one contiguous array shard; return its manifest entry.

    The entry records dtype, shape, byte count and sha256 of the raw
    little-endian bytes — everything :func:`map_shard` needs for cheap
    structural validation and :func:`verify_store` for full checking.
    """
    arr = np.ascontiguousarray(array)
    dtype = str(arr.dtype)
    if dtype not in _ALLOWED_DTYPES:
        raise TypeError(f"shard {rel}: dtype {dtype} not storable")
    data = arr.tobytes()
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_bytes(path, data)
    return {
        "dtype": dtype,
        "shape": list(arr.shape),
        "nbytes": len(data),
        "sha256": hashlib.sha256(data).hexdigest(),
    }


def map_shard(
    root: Path, rel: str, entry: dict, expect_dtype: str | None = None
) -> np.ndarray:
    """Memmap one shard read-only after cheap structural validation.

    Checks existence, the declared dtype (against the allow-list and the
    caller's expected role dtype) and the on-disk byte size against the
    manifest — catching truncated or swapped shards without touching their
    contents.  Content corruption is caught by :func:`verify_store` (the
    stored sha256), which is deliberately not paid on the load path.

    Raises:
        ArtifactIntegrityError: Naming the shard path and the exact reason.
    """
    path = root / rel
    dtype = entry.get("dtype")
    shape = tuple(entry.get("shape", ()))
    nbytes = entry.get("nbytes")
    if dtype not in _ALLOWED_DTYPES:
        raise ArtifactIntegrityError(
            path, f"manifest declares unsupported dtype {dtype!r}"
        )
    if expect_dtype is not None and dtype != expect_dtype:
        raise ArtifactIntegrityError(
            path,
            f"dtype mismatch: manifest declares {dtype!r}, "
            f"expected {expect_dtype!r} for this array role",
        )
    expected_bytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    if nbytes != expected_bytes:
        raise ArtifactIntegrityError(
            path,
            f"manifest shape/dtype imply {expected_bytes} bytes "
            f"but declare nbytes={nbytes}",
        )
    try:
        actual = os.path.getsize(path)
    except OSError as exc:
        raise ArtifactIntegrityError(path, f"missing shard: {exc}") from exc
    if actual != nbytes:
        raise ArtifactIntegrityError(
            path,
            f"truncated or corrupt shard: {actual} bytes on disk, "
            f"manifest declares {nbytes}",
        )
    if nbytes == 0:
        return np.zeros(shape, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="r", shape=shape)


def _verify_shard(root: Path, rel: str, entry: dict) -> None:
    """Full content check of one shard (structural checks + sha256)."""
    mapped = map_shard(root, rel, entry)
    digest = hashlib.sha256(mapped.tobytes()).hexdigest()
    if digest != entry.get("sha256"):
        raise ArtifactIntegrityError(
            root / rel,
            f"sha256 mismatch: stored {entry.get('sha256')}, recomputed "
            f"{digest} — the shard was modified or corrupted",
        )


def _verify_all_shards(root: Path, shards: dict) -> None:
    """Verify every shard, collecting all failures into one error."""
    errors: list[ArtifactIntegrityError] = []
    for rel in sorted(shards):
        try:
            _verify_shard(root, rel, shards[rel])
        except ArtifactIntegrityError as exc:
            errors.append(exc)
    if errors:
        raise ArtifactVerificationError(root, errors)


def _read_manifest(path: str | Path, schema: str) -> dict:
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactIntegrityError(
            manifest_path, "missing manifest (not a columnar store?)"
        )
    return read_artifact(manifest_path, schema, STORE_SCHEMA_VERSION)


def _shard_entry(manifest: dict, rel: str, root: Path) -> dict:
    entry = manifest.get("shards", {}).get(rel)
    if entry is None:
        raise ArtifactIntegrityError(
            root / rel, "shard not listed in the manifest"
        )
    return entry


# ---------------------------------------------------------------------------
# Benchmark store
# ---------------------------------------------------------------------------


def _model_dir(name: str) -> str:
    """Filesystem-safe shard directory for a manifest model name."""
    return name.replace("/", "-").replace("|", "-")


class BenchmarkStore:
    """Open handle over a columnar benchmark directory.

    Thread-safe: lazy model loads are serialised by a lock, so concurrent
    first queries from serving workers map each shard exactly once.
    """

    def __init__(self, root: Path, manifest: dict) -> None:
        self.root = Path(root)
        self.manifest = manifest
        self._lock = threading.Lock()
        self._models: dict[str, object] = {}
        self._mapped_bytes = 0
        self._hits = 0
        self._misses = 0

    @classmethod
    def open(cls, path: str | Path) -> "BenchmarkStore":
        """Open a store directory, validating the manifest envelope.

        Raises:
            ArtifactIntegrityError: Missing/truncated/corrupt manifest, a
                schema name or version mismatch, or a malformed payload.
        """
        root = Path(path)
        manifest = _read_manifest(root, BENCHMARK_STORE_SCHEMA)
        if not isinstance(manifest.get("models"), dict) or not isinstance(
            manifest.get("shards"), dict
        ):
            raise ArtifactIntegrityError(
                root / MANIFEST_NAME,
                "malformed manifest: missing 'models'/'shards' tables",
            )
        if "accuracy" not in manifest["models"]:
            raise ArtifactIntegrityError(
                root / MANIFEST_NAME,
                "malformed manifest: no 'accuracy' model",
            )
        return cls(root, manifest)

    # ------------------------------------------------------------- loading

    def model_names(self) -> list[str]:
        """Manifest model names (``accuracy`` plus ``perf/<device>|<metric>``)."""
        return sorted(self.manifest["models"])

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of shards mapped so far (lazy loads only map on use)."""
        return self._mapped_bytes

    def load_model(self, name: str):
        """Load one surrogate, memoised; memmaps its shards on first use."""
        with self._lock:
            cached = self._models.get(name)
            if cached is not None:
                self._hits += 1
                self._record_metrics()
                return cached
            self._misses += 1
            model = self._load_model_uncached(name)
            self._models[name] = model
            self._record_metrics()
            return model

    def _load_model_uncached(self, name: str):
        entry = self.manifest["models"].get(name)
        if entry is None:
            raise ArtifactIntegrityError(
                self.root / MANIFEST_NAME,
                f"model {name!r} not in manifest; "
                f"available: {self.model_names()}",
            )
        try:
            arrays = {}
            for role, rel in entry["arrays"].items():
                shard = _shard_entry(self.manifest, rel, self.root)
                arrays[role] = map_shard(
                    self.root, rel, shard, expect_dtype=ARRAY_DTYPES.get(role)
                )
                self._mapped_bytes += shard["nbytes"]
            return regressor_from_arrays(entry["spec"], arrays)
        except ArtifactIntegrityError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactIntegrityError(
                self.root / MANIFEST_NAME,
                f"malformed model entry {name!r}: {exc!r}",
            ) from exc

    def _record_metrics(self) -> None:
        if obs.telemetry_active():
            registry = obs.metrics()
            registry.set_gauge("store.model_hits", self._hits)
            registry.set_gauge("store.model_misses", self._misses)
            registry.set_gauge("store.mapped_bytes", self._mapped_bytes)

    # ------------------------------------------------------------ verifying

    def verify(self) -> int:
        """Fully re-hash every shard against the manifest; return the count.

        The sweep never stops at the first bad shard: every failure is
        collected and raised together, so one pass reports the full damage.

        Raises:
            ArtifactVerificationError: Naming every shard whose size or
                sha256 does not match its manifest entry.
        """
        shards = self.manifest["shards"]
        _verify_all_shards(self.root, shards)
        return len(shards)


class _LazyModels(Mapping):
    """Read-only ``(device, metric) -> Regressor`` map, loading on demand."""

    def __init__(self, store: BenchmarkStore, names: dict[tuple[str, str], str]):
        self._store = store
        self._names = names  # (device, metric) -> manifest model name

    def __getitem__(self, key):
        if key not in self._names:
            raise KeyError(key)
        return self._store.load_model(self._names[key])

    def __contains__(self, key) -> bool:  # don't force a load on lookup
        return key in self._names

    def __iter__(self):
        return iter(self._names)

    def __len__(self) -> int:
        return len(self._names)


class _ColumnarBenchmark(AccelNASBench):
    """A benchmark whose surrogates live in a :class:`BenchmarkStore`.

    Construction touches only the manifest: the accuracy surrogate and each
    device surrogate are loaded (and their shards mapped) on first query.
    """

    def __init__(self, store: BenchmarkStore) -> None:
        manifest = store.manifest
        self._store = store
        self._perf_models = _LazyModels(
            store,
            {
                tuple(entry["target"]): name
                for name, entry in manifest["models"].items()
                if name != "accuracy"
            },
        )
        self._encoder = FeatureEncoder(manifest["encoding"])
        self.meta = manifest.get("meta", {})

    @property
    def _accuracy_model(self):
        return self._store.load_model("accuracy")

    @property
    def store(self) -> BenchmarkStore:
        """The underlying store handle (cache stats, ``verify()``)."""
        return self._store


def pack_benchmark(bench: AccelNASBench, path: str | Path) -> Path:
    """Write ``bench`` as a columnar store directory; return its path.

    Every surrogate's arrays become shards under ``shards/<model>/``; the
    manifest records specs, per-shard integrity entries, the encoder and
    the benchmark meta.  Repacking an identically-built benchmark produces
    byte-identical shards and manifest.
    """
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    models: dict[str, dict] = {}
    shards: dict[str, dict] = {}

    def add_model(name: str, model) -> None:
        spec, arrays = regressor_to_arrays(model)
        rels = {}
        for role in sorted(arrays):
            rel = f"shards/{_model_dir(name)}/{role}.bin"
            shards[rel] = write_shard(root, rel, arrays[role])
            rels[role] = rel
        entry = {"spec": spec, "arrays": rels}
        if name != "accuracy":
            device, metric = name.split("/", 1)[1].split("|", 1)
            entry["target"] = [device, metric]
        models[name] = entry

    add_model("accuracy", bench._accuracy_model)
    for (device, metric), model in sorted(bench._perf_models.items()):
        add_model(f"perf/{device}|{metric}", model)

    manifest = {
        "kind": "benchmark",
        "meta": bench.meta,
        "encoding": bench.encoder.encoding,
        "models": models,
        "shards": shards,
    }
    write_artifact(
        root / MANIFEST_NAME,
        manifest,
        BENCHMARK_STORE_SCHEMA,
        STORE_SCHEMA_VERSION,
    )
    return root


def load_benchmark(path: str | Path, lazy: bool = True) -> AccelNASBench:
    """Load a benchmark from a columnar store directory.

    With ``lazy=True`` (the default) this only reads the manifest; each
    surrogate is constructed from its memmapped shards on first query.
    ``lazy=False`` force-loads every model up front (still zero-copy).
    """
    store = BenchmarkStore.open(path)
    bench = _ColumnarBenchmark(store)
    if not lazy:
        store.load_model("accuracy")
        for key in bench._perf_models:
            bench._perf_models[key]
    return bench


# ---------------------------------------------------------------------------
# Dataset store
# ---------------------------------------------------------------------------


def pack_dataset(
    dataset: BenchmarkDataset,
    path: str | Path,
    shard_rows: int = DEFAULT_SHARD_ROWS,
) -> Path:
    """Write a dataset as a columnar store sharded by arch-key range.

    Rows keep their collection order; every ``shard_rows`` consecutive rows
    become one shard pair — a float64 ``values`` column and a uint8
    ``archs`` column (newline-joined canonical arch keys) — and the
    manifest records each shard's row span and first/last arch key, so
    range lookups can map only the shards they need.
    """
    if shard_rows < 1:
        raise ValueError("shard_rows must be >= 1")
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    keys = [arch.to_string() for arch in dataset.archs]
    values = np.ascontiguousarray(dataset.values, dtype=np.float64)
    shards: dict[str, dict] = {}
    row_shards: list[dict] = []
    for start in range(0, len(keys), shard_rows):
        stop = min(start + shard_rows, len(keys))
        tag = f"rows-{len(row_shards):05d}"
        values_rel = f"shards/{tag}.values.bin"
        archs_rel = f"shards/{tag}.archs.bin"
        shards[values_rel] = write_shard(root, values_rel, values[start:stop])
        arch_bytes = np.frombuffer(
            "\n".join(keys[start:stop]).encode("utf-8"), dtype=np.uint8
        )
        shards[archs_rel] = write_shard(root, archs_rel, arch_bytes)
        row_shards.append(
            {
                "start": start,
                "stop": stop,
                "values": values_rel,
                "archs": archs_rel,
                "key_range": [keys[start], keys[stop - 1]],
            }
        )
    manifest = {
        "kind": "dataset",
        "name": dataset.name,
        "metric": dataset.metric,
        "meta": dataset.meta,
        "num_rows": len(keys),
        "row_shards": row_shards,
        "shards": shards,
    }
    write_artifact(
        root / MANIFEST_NAME, manifest, DATASET_STORE_SCHEMA, STORE_SCHEMA_VERSION
    )
    return root


def load_dataset(path: str | Path) -> BenchmarkDataset:
    """Load a dataset written by :func:`pack_dataset`.

    A single-shard store hands the read-only values memmap straight to the
    dataset (zero-copy); multi-shard stores concatenate their columns.

    Raises:
        ArtifactIntegrityError: Manifest or shard validation failure,
            naming the path and the exact reason.
    """
    root = Path(path)
    manifest = _read_manifest(root, DATASET_STORE_SCHEMA)
    try:
        row_shards = manifest["row_shards"]
        value_parts = []
        keys: list[str] = []
        for row_shard in row_shards:
            values_rel = row_shard["values"]
            archs_rel = row_shard["archs"]
            value_parts.append(
                map_shard(
                    root,
                    values_rel,
                    _shard_entry(manifest, values_rel, root),
                    expect_dtype="float64",
                )
            )
            arch_bytes = map_shard(
                root,
                archs_rel,
                _shard_entry(manifest, archs_rel, root),
                expect_dtype="uint8",
            )
            text = bytes(arch_bytes).decode("utf-8")
            shard_keys = text.split("\n") if text else []
            if len(shard_keys) != row_shard["stop"] - row_shard["start"]:
                raise ArtifactIntegrityError(
                    root / archs_rel,
                    f"{len(shard_keys)} arch keys but rows "
                    f"[{row_shard['start']}, {row_shard['stop']})",
                )
            keys.extend(shard_keys)
        if len(value_parts) == 1:
            values = value_parts[0]
        elif value_parts:
            values = np.concatenate(value_parts)
        else:
            values = np.empty(0, dtype=np.float64)
        return BenchmarkDataset(
            name=manifest["name"],
            metric=manifest["metric"],
            archs=[ArchSpec.from_string(key) for key in keys],
            values=values,
            meta=manifest.get("meta", {}),
        )
    except ArtifactIntegrityError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactIntegrityError(
            root / MANIFEST_NAME, f"malformed dataset manifest: {exc!r}"
        ) from exc


# ---------------------------------------------------------------------------
# Verification (stores and JSON envelopes)
# ---------------------------------------------------------------------------


def verify_store(path: str | Path) -> dict:
    """Fully verify a columnar store (benchmark or dataset) at ``path``.

    Revalidates the manifest envelope, then re-hashes every shard against
    its manifest entry — sweeping all shards and reporting every failure
    in one pass.  Returns a summary dict with the store kind, schema,
    shard count and total payload bytes.

    Raises:
        ArtifactVerificationError: Naming every corrupt shard (path and
            reason each) after the full sweep.
        ArtifactIntegrityError: The manifest itself is missing or corrupt.
    """
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    schema = artifact_schema(manifest_path)
    if schema not in (BENCHMARK_STORE_SCHEMA, DATASET_STORE_SCHEMA):
        raise ArtifactIntegrityError(
            manifest_path, f"unknown store schema {schema!r}"
        )
    manifest = _read_manifest(root, schema)
    shards = manifest.get("shards")
    if not isinstance(shards, dict):
        raise ArtifactIntegrityError(
            manifest_path, "malformed manifest: missing 'shards' table"
        )
    _verify_all_shards(root, shards)
    return {
        "kind": manifest.get("kind", "unknown"),
        "schema": schema,
        "shards": len(shards),
        "bytes": sum(entry["nbytes"] for entry in shards.values()),
    }


def artifact_schema(path: str | Path) -> str:
    """The ``schema`` field of a JSON artifact envelope, envelope-checked.

    Used by the CLI ``pack`` command to autodetect whether a JSON file is
    a benchmark or a dataset before converting it.

    Raises:
        ArtifactIntegrityError: Unreadable/invalid JSON or missing envelope.
    """
    path = Path(path)
    try:
        envelope = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ArtifactIntegrityError(path, f"unreadable: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ArtifactIntegrityError(
            path, f"not valid JSON (truncated or corrupt): {exc}"
        ) from exc
    if not isinstance(envelope, dict) or not all(
        key in envelope for key in ARTIFACT_ENVELOPE_KEYS
    ):
        raise ArtifactIntegrityError(
            path,
            "missing integrity envelope (legacy or foreign artifact); "
            f"expected keys {list(ARTIFACT_ENVELOPE_KEYS)}",
        )
    return envelope["schema"]


def verify_artifact(path: str | Path) -> dict:
    """Verify any Accel-NASBench artifact: columnar store or JSON envelope.

    Columnar store directories get a full manifest + shard verification;
    JSON envelope files get their stored sha256 recomputed against the
    payload.  Returns a summary dict (``kind``, ``schema``, plus ``shards``
    and ``bytes`` for stores).

    Raises:
        ArtifactIntegrityError: Naming the path and the exact reason.
    """
    target = Path(path)
    if target.is_dir():
        return verify_store(target)
    schema = artifact_schema(target)
    envelope = json.loads(target.read_text(encoding="utf-8"))
    actual = payload_checksum(envelope["payload"])
    if actual != envelope["sha256"]:
        raise ArtifactIntegrityError(
            target,
            f"sha256 mismatch: stored {envelope['sha256']}, recomputed "
            f"{actual} — the payload was modified or corrupted",
        )
    return {"kind": "json", "schema": schema}


__all__ = [
    "ArtifactVerificationError",
    "BENCHMARK_STORE_SCHEMA",
    "BenchmarkStore",
    "DATASET_STORE_SCHEMA",
    "DEFAULT_SHARD_ROWS",
    "MANIFEST_NAME",
    "STORE_SCHEMA_VERSION",
    "artifact_schema",
    "is_columnar_store",
    "load_benchmark",
    "load_dataset",
    "map_shard",
    "pack_benchmark",
    "pack_dataset",
    "verify_artifact",
    "verify_store",
    "write_shard",
]
