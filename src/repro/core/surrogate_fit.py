"""Surrogate fitting pipeline (paper section 3.3.3, Tables 1 and 2).

Splits a :class:`~repro.core.dataset.BenchmarkDataset` 0.8/0.1/0.1, optionally
tunes the surrogate's hyperparameters with SMAC-lite on the train/val splits,
refits on the train split with the tuned configuration, and reports test-set
R^2, Kendall tau and MAE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

import repro.obs as obs
from repro.core.dataset import BenchmarkDataset, train_val_test_split
from repro.core.metrics import kendall_tau, mae, r2_score
from repro.hpo.configspace import (
    CategoricalParam,
    ConfigSpace,
    FloatParam,
    IntParam,
)
from repro.hpo.smac import SmacOptimizer
from repro.searchspace.features import FeatureEncoder
from repro.surrogates import Regressor, make_surrogate
from repro.surrogates.transform import TransformedTargetRegressor

# Default hyperparameter spaces per surrogate family, mirroring the ranges
# one would hand to SMAC3 for the real libraries.
DEFAULT_SPACES: dict[str, ConfigSpace] = {
    "xgb": ConfigSpace(
        [
            IntParam("n_estimators", 200, 900),
            FloatParam("learning_rate", 0.02, 0.15, log=True),
            IntParam("max_depth", 3, 7),
            FloatParam("min_child_weight", 1.0, 40.0, log=True),
            FloatParam("reg_lambda", 0.5, 16.0, log=True),
            FloatParam("subsample", 0.6, 1.0),
            FloatParam("colsample_bynode", 0.5, 1.0),
        ]
    ),
    "lgb": ConfigSpace(
        [
            IntParam("n_estimators", 200, 900),
            FloatParam("learning_rate", 0.02, 0.15, log=True),
            IntParam("num_leaves", 8, 64),
            FloatParam("min_child_weight", 1.0, 40.0, log=True),
            FloatParam("reg_lambda", 0.5, 16.0, log=True),
            FloatParam("subsample", 0.6, 1.0),
            FloatParam("colsample_bynode", 0.5, 1.0),
        ]
    ),
    "rf": ConfigSpace(
        [
            IntParam("n_estimators", 50, 200),
            IntParam("max_depth", 8, 20),
            IntParam("min_samples_leaf", 1, 8),
            FloatParam("max_features", 0.2, 0.9),
        ]
    ),
    "esvr": ConfigSpace(
        [
            FloatParam("C", 0.5, 50.0, log=True),
            FloatParam("epsilon", 5e-4, 5e-2, log=True),
            CategoricalParam("kernel", ("rbf", "linear")),
        ]
    ),
    "nusvr": ConfigSpace(
        [
            FloatParam("C", 0.5, 50.0, log=True),
            FloatParam("nu", 0.1, 0.9),
            CategoricalParam("kernel", ("rbf", "linear")),
        ]
    ),
    "gp": ConfigSpace(
        [
            FloatParam("length_scale", 0.5, 30.0, log=True),
            FloatParam("noise", 1e-6, 1e-1, log=True),
        ]
    ),
}

# Hand-tuned defaults used when HPO is skipped (hpo_budget=0).  The accuracy
# target is noisy (seed noise, scheme interaction), so trees are shallow and
# heavily regularised; device measurements are near-deterministic, so deeper
# trees with light regularisation fit their multiplicative structure better.
DEFAULT_PARAMS: dict[str, dict[str, Any]] = {
    "xgb": {
        "n_estimators": 700,
        "learning_rate": 0.05,
        "max_depth": 4,
        "min_child_weight": 15.0,
        "reg_lambda": 4.0,
        "subsample": 0.8,
        "colsample_bynode": 0.7,
    },
    "lgb": {
        "n_estimators": 700,
        "learning_rate": 0.05,
        "num_leaves": 16,
        "min_child_weight": 15.0,
        "reg_lambda": 4.0,
        "subsample": 0.8,
        "colsample_bynode": 0.7,
    },
    "rf": {"n_estimators": 100, "max_depth": 16, "max_features": 0.4},
    "esvr": {"C": 10.0, "epsilon": 0.003},
    "nusvr": {"C": 10.0, "nu": 0.5},
    "gp": {"noise": 3e-2},
}

DEVICE_PARAMS: dict[str, dict[str, Any]] = {
    "xgb": {
        "n_estimators": 700,
        "learning_rate": 0.07,
        "max_depth": 6,
        "min_child_weight": 2.0,
        "reg_lambda": 1.0,
        "subsample": 0.9,
        "colsample_bynode": 0.9,
    },
    "lgb": {
        "n_estimators": 700,
        "learning_rate": 0.07,
        "num_leaves": 48,
        "min_child_weight": 2.0,
        "reg_lambda": 1.0,
        "subsample": 0.9,
        "colsample_bynode": 0.9,
    },
    "rf": {"n_estimators": 100, "max_depth": 18, "max_features": 0.5},
    "esvr": {"C": 30.0, "epsilon": 0.002},
    "nusvr": {"C": 30.0, "nu": 0.6},
    "gp": {"noise": 1e-3},
}

# The pure-numpy kernel solver is O(n^2) in memory and time; SVR variants are
# trained on a capped subsample (documented substitution for libsvm).
SVR_MAX_SAMPLES = 1500


@dataclass
class FitReport:
    """Test-set quality of one fitted surrogate (one row of Table 1/2).

    Attributes:
        dataset: Dataset name.
        family: Surrogate family key.
        r2: Coefficient of determination on the test split.
        kendall: Kendall tau on the test split.
        mae: Mean absolute error on the test split.
        params: Hyperparameters used for the final fit.
        model: The fitted surrogate.
    """

    dataset: str
    family: str
    r2: float
    kendall: float
    mae: float
    params: dict[str, Any]
    model: Regressor

    def row(self) -> str:
        """Paper-style table row."""
        return (
            f"{self.family:>6s}  R2={self.r2:6.3f}  KT tau={self.kendall:6.3f}  "
            f"MAE={self.mae:.2e}"
        )


class SurrogateFitter:
    """Fit and evaluate surrogates on a benchmark dataset.

    Args:
        encoder: Feature encoding for architectures.
        split_seed: Seed of the 0.8/0.1/0.1 split.
        hpo_budget: SMAC evaluations for hyperparameter tuning (0 = use the
            hand-tuned defaults).
        hpo_seed: SMAC seed.
        engine: Tree-growth engine forwarded to the tree families
            (``xgb``/``lgb``/``rf``): ``"partition"`` or ``"legacy"``.
            Both grow bit-identical models; the knob exists for golden
            tests and speedup baselines.
        hist_mode: Histogram kernel selection forwarded to the tree
            families.
        n_jobs: Tree-fitting workers forwarded to ``rf`` (byte-identical
            ensembles for any value).

    ``engine``/``hist_mode``/``n_jobs`` never enter the fitted parameter
    surface, so saved artifacts are byte-stable across all of them.

    Targets are always standardised before fitting, and throughput/latency
    targets are additionally log-transformed (their structure is
    multiplicative: time sums per layer, rate is its reciprocal).  Fitted
    models are returned wrapped so ``predict`` yields original units.
    """

    def __init__(
        self,
        encoder: FeatureEncoder | None = None,
        split_seed: int = 0,
        hpo_budget: int = 0,
        hpo_seed: int = 0,
        engine: str = "partition",
        hist_mode: str = "auto",
        n_jobs: int | None = 1,
    ) -> None:
        self.encoder = encoder if encoder is not None else FeatureEncoder("onehot+global")
        self.split_seed = split_seed
        self.hpo_budget = hpo_budget
        self.hpo_seed = hpo_seed
        self.engine = engine
        self.hist_mode = hist_mode
        self.n_jobs = n_jobs

    def _build(self, family: str, params: dict[str, Any]) -> Regressor:
        if family in ("esvr", "nusvr", "gp"):
            params = {**params, "max_samples": SVR_MAX_SAMPLES}
        elif family in ("xgb", "lgb", "rf"):
            params = {**params, "engine": self.engine, "hist_mode": self.hist_mode}
            if family == "rf":
                params["n_jobs"] = self.n_jobs
        return make_surrogate(family, **params)

    def _tune(
        self,
        family: str,
        X_train: np.ndarray,
        y_train: np.ndarray,
        X_val: np.ndarray,
        y_val: np.ndarray,
    ) -> dict[str, Any]:
        space = DEFAULT_SPACES[family]

        def objective(config: dict[str, Any]) -> float:
            model = self._build(family, config)
            model.fit(X_train, y_train)
            pred = model.predict(X_val)
            return float(np.mean((pred - y_val) ** 2))

        smac = SmacOptimizer(space, seed=self.hpo_seed)
        result = smac.optimize(objective, budget=self.hpo_budget)
        return result.best_config

    def fit(
        self,
        dataset: BenchmarkDataset,
        family: str,
        features: np.ndarray | None = None,
    ) -> FitReport:
        """Run the full split/tune/fit/evaluate pipeline for one family.

        Args:
            dataset: The collected dataset to fit on.
            family: Surrogate family key (``xgb``, ``lgb``, ``rf``...).
            features: Optional precomputed ``encoder.encode(dataset.archs)``
                matrix.  The paper's build fits many surrogates on the *same*
                architecture sample, so callers encode once and share the
                matrix across every fit instead of re-encoding per target.
        """
        active = obs.telemetry_active()
        fit_start = obs.monotonic() if active else 0.0
        if features is not None:
            if len(features) != len(dataset):
                raise ValueError(
                    f"features has {len(features)} rows for {len(dataset)} archs"
                )
            X = np.asarray(features, dtype=np.float64)
        else:
            X = self.encoder.encode(dataset.archs)
        y_raw = dataset.values.copy()
        use_log = dataset.metric in ("throughput", "latency")
        y, mu, sigma = TransformedTargetRegressor.transform_target(y_raw, log=use_log)
        idx_train, idx_val, idx_test = train_val_test_split(
            len(dataset), seed=self.split_seed
        )
        X_train, y_train = X[idx_train], y[idx_train]
        X_val, y_val = X[idx_val], y[idx_val]
        X_test = X[idx_test]

        if self.hpo_budget > 0:
            params = self._tune(family, X_train, y_train, X_val, y_val)
        elif dataset.metric == "accuracy":
            params = dict(DEFAULT_PARAMS[family])
        else:
            params = dict(DEVICE_PARAMS[family])

        inner = self._build(family, params)
        # Final fit on train+val (standard practice after tuning).
        with obs.span("surrogate.fit", dataset=dataset.name, family=family):
            inner.fit(
                np.concatenate([X_train, X_val]), np.concatenate([y_train, y_val])
            )
        model = TransformedTargetRegressor(inner, mu=mu, sigma=sigma, log=use_log)
        y_test_raw = y_raw[idx_test]
        pred_raw = model.predict(X_test)
        if active:
            elapsed = obs.monotonic() - fit_start
            obs.metrics().observe("surrogate.fit_seconds", elapsed)
            obs.get_logger("repro.core.surrogate_fit").info(
                "surrogate.fit_done",
                dataset=dataset.name,
                family=family,
                seconds=round(elapsed, 4),
                n=len(dataset),
            )
        return FitReport(
            dataset=dataset.name,
            family=family,
            r2=r2_score(y_test_raw, pred_raw),
            kendall=kendall_tau(y_test_raw, pred_raw),
            mae=mae(y_test_raw, pred_raw),
            params=params,
            model=model,
        )

    def fit_families(
        self, dataset: BenchmarkDataset, families: tuple[str, ...]
    ) -> list[FitReport]:
        """Fit several families on the same dataset (Table 1 protocol).

        The dataset is encoded once and the feature matrix shared by every
        family's fit.
        """
        X = self.encoder.encode(dataset.archs)
        return [self.fit(dataset, family, features=X) for family in families]
