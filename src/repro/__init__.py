"""Accel-NASBench reproduction: sustainable benchmarking for accelerator-aware NAS.

Reproduction of Ahmad et al., "Accel-NASBench: Sustainable Benchmarking for
Accelerator-Aware NAS" (DAC 2024).  The package provides:

* :mod:`repro.searchspace` — the MnasNet search space (~1e11 models),
* :mod:`repro.nn` — a shape-aware network IR with FLOPs/params/memory counters,
* :mod:`repro.trainsim` — a simulated ImageNet training substrate,
* :mod:`repro.hwsim` — analytical GPU/TPU/FPGA inference performance models,
* :mod:`repro.surrogates` — from-scratch XGB/LGB/RF/SVR regressors,
* :mod:`repro.hpo` — ConfigSpace + SMAC-lite hyperparameter optimisation,
* :mod:`repro.core` — proxy search, dataset collection, surrogate fitting and
  the :class:`~repro.core.benchmark.AccelNASBench` zero-cost query interface,
* :mod:`repro.optimizers` — RS / RE / REINFORCE NAS optimizers (uni/bi-objective),
* :mod:`repro.experiments` — one runner per paper table and figure.

Quickstart::

    from repro import AccelNASBench, ArchSpec, P_STAR

    bench, reports = AccelNASBench.build(P_STAR, num_archs=800)
    arch = ArchSpec.from_string(
        "e1k3L1se1|e6k3L2se1|e6k5L2se1|e6k3L3se1|e6k5L3se1|e6k5L3se1|e6k3L1se1")
    print(bench.query(arch, device="a100", metric="throughput"))
"""

from repro.core.benchmark import AccelNASBench
from repro.core.proxy_search import ProxySearchResult, TrainingProxySearch
from repro.core.reliability import (
    ArtifactIntegrityError,
    FaultPlan,
    RetryPolicy,
)
from repro.searchspace.mnasnet import ArchSpec, MnasNetSearchSpace
from repro.trainsim.schemes import (
    P_STAR,
    REFERENCE_SCHEME,
    TrainingScheme,
)

__version__ = "1.0.0"

__all__ = [
    "AccelNASBench",
    "ArchSpec",
    "ArtifactIntegrityError",
    "FaultPlan",
    "MnasNetSearchSpace",
    "RetryPolicy",
    "P_STAR",
    "ProxySearchResult",
    "REFERENCE_SCHEME",
    "TrainingProxySearch",
    "TrainingScheme",
    "__version__",
]
