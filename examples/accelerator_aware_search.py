"""Accelerator-aware NAS: find FPGA-efficient models at zero cost.

The scenario from the paper's introduction: you want an ImageNet model that
runs fast on a Xilinx VCK190 FPGA.  FLOPs is a poor proxy for DPU throughput
(squeeze-excitation falls back to the host CPU, depthwise convs map badly to
the MAC array), so we search *against the device surrogate* with bi-objective
REINFORCE, then verify the best picks with true (simulated) training and
on-device measurement.

Run:  python examples/accelerator_aware_search.py
"""

from repro import AccelNASBench, ArchSpec, P_STAR, REFERENCE_SCHEME
from repro.experiments.fig4_biobjective import pick_pareto_representatives
from repro.hwsim import MeasurementHarness, get_device
from repro.optimizers import Reinforce
from repro.searchspace.baselines import EFFICIENTNET_B0
from repro.trainsim import SimulatedTrainer

DEVICE = "vck190"
BUDGET = 600


def main() -> None:
    print(f"Building benchmark for accuracy + {DEVICE} throughput...")
    bench, _ = AccelNASBench.build(
        P_STAR, num_archs=800, devices={DEVICE: ("throughput",)}
    )

    print(f"Running bi-objective REINFORCE ({BUDGET} zero-cost evaluations)...")
    optimizer = Reinforce(seed=0)
    result = optimizer.run_biobjective(
        accuracy_fn=bench.query_accuracy,
        perf_fn=lambda a: bench.query_performance(a, DEVICE, "throughput"),
        target=2000.0,
        budget=BUDGET,
        metric="throughput",
        device=DEVICE,
    )
    front = result.pareto_points()
    print(f"Pareto front: {len(front)} points")

    # "True" evaluation of the hand-picked solutions: reference-scheme
    # training plus on-device measurement, exactly like the paper's Fig. 6.
    trainer = SimulatedTrainer()
    harness = MeasurementHarness(get_device(DEVICE))

    def true_eval(arch: ArchSpec) -> tuple[float, float]:
        acc, _, _ = trainer.train_mean(arch, REFERENCE_SCHEME, seeds=(0, 1, 2))
        return acc, harness.measure_throughput(arch)

    print("\nHand-picked pareto solutions, true evaluation:")
    for rank, (i, _, _) in enumerate(pick_pareto_representatives(result)):
        arch = result.archs[i]
        acc, thr = true_eval(arch)
        print(
            f"  pick-{chr(ord('a') + rank)}: top-1={acc:.4f} "
            f"throughput={thr:7.1f} img/s  {arch.to_string()}"
        )

    b0_acc, b0_thr = true_eval(EFFICIENTNET_B0.arch)
    print(f"\nEfficientNet-B0 reference: top-1={b0_acc:.4f} throughput={b0_thr:.1f} img/s")


if __name__ == "__main__":
    main()
