"""Search for a cheap training proxy that preserves architecture rankings.

Demonstrates the paper's core methodological contribution (Eq. 1): grid
search over training-scheme hyperparameters to find a scheme that is several
times cheaper than the reference recipe while keeping Kendall tau high, then
validate the winner on unseen architectures with 3-seed averaging (Fig. 3).

Run:  python examples/proxy_scheme_search.py
"""

from repro import TrainingProxySearch
from repro.core.proxy_search import flops_stratified_grid
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim.schemes import PROXY_SCHEME_GRID, proxy_scheme_candidates


def main() -> None:
    grid = flops_stratified_grid(n=20, seed=0, pool_size=600)
    search = TrainingProxySearch(grid_archs=grid, t_spec=3.0)

    print("Proxy hyperparameter grid:")
    for name, choices in PROXY_SCHEME_GRID.items():
        print(f"  {name:20s} {choices}")
    candidates = proxy_scheme_candidates()
    print(f"  -> {len(candidates)} valid schemes")

    print("\nSearching (early stop at tau >= 0.94)...")
    result = search.search(early_stop_tau=0.94)
    best = result.best
    print(
        f"p* = {best.scheme}: tau={best.tau:.3f}, "
        f"{best.speedup:.1f}x cheaper than reference "
        f"({best.mean_hours:.2f} vs {result.reference_hours:.2f} GPU-h/model), "
        f"{result.num_evaluated} schemes evaluated"
    )

    print("\nValidating on 40 unseen architectures, 3 seeds each...")
    unseen = MnasNetSearchSpace(seed=99).sample_batch(40, unique=True)
    validation = search.validate(best.scheme, unseen)
    print(
        f"validation tau = {validation['tau']:.3f} "
        f"(paper: 0.926 on 120 archs)"
    )


if __name__ == "__main__":
    main()
