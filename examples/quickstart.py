"""Quickstart: build a small Accel-NASBench and query it.

Builds the benchmark from an 800-architecture collection (the paper uses
5.2k; smaller keeps this example under a minute), then answers zero-cost
queries: the accuracy of EfficientNet-B0, its predicted throughput on every
accelerator, and a random architecture's bi-objective profile.

Run:  python examples/quickstart.py
"""

from repro import AccelNASBench, MnasNetSearchSpace, P_STAR
from repro.searchspace.baselines import EFFICIENTNET_B0


def main() -> None:
    print("Building Accel-NASBench (800 archs, XGB surrogates)...")
    bench, reports = AccelNASBench.build(P_STAR, num_archs=800)
    print("\nSurrogate fit quality (test split):")
    for report in reports:
        print(f"  {report.dataset:18s} {report.row()}")

    b0 = EFFICIENTNET_B0.arch
    print(f"\nEfficientNet-B0 = {b0.to_string()}")
    print(f"  predicted top-1 (proxy scheme): {bench.query_accuracy(b0):.4f}")
    for device, metric in bench.targets:
        value = bench.query_performance(b0, device, metric)
        unit = "ms" if metric == "latency" else "img/s"
        print(f"  predicted {metric:10s} on {device:8s}: {value:9.1f} {unit}")

    space = MnasNetSearchSpace(seed=7)
    arch = space.sample()
    result = bench.query(arch, device="vck190", metric="throughput")
    print(f"\nRandom arch {arch.to_string()}")
    print(
        f"  accuracy={result.accuracy:.4f}, "
        f"vck190 throughput={result.performance:.1f} img/s"
    )


if __name__ == "__main__":
    main()
