"""Why FLOPs is a bad proxy: device-specific model rankings.

Measures a set of random architectures on all six simulated accelerators and
shows (a) the Kendall tau between FLOPs-based ranking and each device's true
throughput ranking, and (b) the cross-device rank agreement matrix.  The
punchline — the motivation for accelerator-aware benchmarks — is that devices
disagree with FLOPs *and with each other*, so the optimal model is
device-contingent.

Run:  python examples/device_ranking_study.py
"""

import numpy as np

from repro.core.metrics import kendall_tau
from repro.hwsim import MeasurementHarness, get_device, list_devices
from repro.nn import count_graph
from repro.searchspace import MnasNetSearchSpace, build_model

NUM_ARCHS = 120


def main() -> None:
    space = MnasNetSearchSpace(seed=11)
    archs = space.sample_batch(NUM_ARCHS, unique=True)
    flops = np.asarray([count_graph(build_model(a)).flops for a in archs])
    # Negate: fewer FLOPs should mean more throughput if FLOPs were a proxy.
    flops_rank_proxy = -flops

    throughput = {}
    for device in list_devices():
        harness = MeasurementHarness(get_device(device))
        throughput[device] = np.asarray(
            [harness.measure_throughput(a) for a in archs]
        )

    print(f"Rank correlation of -FLOPs vs device throughput ({NUM_ARCHS} archs):")
    for device, values in throughput.items():
        tau = kendall_tau(flops_rank_proxy, values)
        print(f"  {device:8s} tau = {tau:5.2f}")

    devices = list(throughput)
    print("\nCross-device throughput rank agreement (Kendall tau):")
    header = "          " + " ".join(f"{d:>8s}" for d in devices)
    print(header)
    for d1 in devices:
        row = " ".join(
            f"{kendall_tau(throughput[d1], throughput[d2]):8.2f}" for d2 in devices
        )
        print(f"  {d1:8s}{row}")

    print("\nPer-device best architecture (highest measured throughput):")
    for device, values in throughput.items():
        best = archs[int(np.argmax(values))]
        print(f"  {device:8s} {best.to_string()}")


if __name__ == "__main__":
    main()
