"""Generalizability: build a benchmark for a second dataset.

The paper constructs Accel-NASBench for ImageNet2012 and points to its
repository for additional search spaces and datasets.  This example builds
the accuracy surrogate for a simulated ImageNet-100 campaign through exactly
the same pipeline, and checks two things a practitioner would care about:

1. surrogate quality transfers (the pipeline is dataset-agnostic), and
2. the *rankings* of architectures on the small dataset correlate with — but
   do not match — ImageNet rankings, quantifying how misleading a dataset
   proxy would be (section 2.2.1's argument against proxy datasets).

Run:  python examples/generalizability_study.py
"""

import numpy as np

from repro.core.dataset import collect_accuracy_dataset, sample_dataset_archs
from repro.core.metrics import kendall_tau
from repro.core.surrogate_fit import SurrogateFitter
from repro.trainsim import IMAGENET100, P_STAR, SimulatedTrainer

NUM_ARCHS = 800


def main() -> None:
    archs = sample_dataset_archs(NUM_ARCHS, seed=0)

    print(f"Collecting ANB-Acc for ImageNet and ImageNet-100 ({NUM_ARCHS} archs)...")
    imagenet = collect_accuracy_dataset(archs, P_STAR, trainer=SimulatedTrainer())
    small = collect_accuracy_dataset(
        archs,
        P_STAR,
        trainer=SimulatedTrainer(dataset=IMAGENET100),
        name="ANB-Acc-imagenet100",
    )
    print(
        f"  imagenet    : mean top-1 {imagenet.values.mean():.3f} "
        f"(std {imagenet.values.std():.3f})"
    )
    print(
        f"  imagenet100 : mean top-1 {small.values.mean():.3f} "
        f"(std {small.values.std():.3f})"
    )

    fitter = SurrogateFitter()
    for dataset in (imagenet, small):
        report = fitter.fit(dataset, "xgb")
        print(f"  surrogate on {dataset.name:22s} {report.row()}")

    tau = kendall_tau(imagenet.values, small.values)
    print(
        f"\nCross-dataset architecture rank correlation: tau = {tau:.3f}\n"
        "High enough that trends transfer, low enough that searching on the\n"
        "small dataset would misrank models — the paper's case against\n"
        "dataset proxies."
    )

    top_small = np.argsort(small.values)[-10:]
    ranks_on_imagenet = np.argsort(np.argsort(imagenet.values))
    print(
        "ImageNet rank percentile of the small-dataset top-10: "
        + ", ".join(
            f"{100 * ranks_on_imagenet[i] / NUM_ARCHS:.0f}%" for i in top_small
        )
    )


if __name__ == "__main__":
    main()
