"""Hardware profiling tour: why the same model behaves differently per device.

Profiles EfficientNet-B0 on a GPU, a TPU and both FPGAs — per-operator-class
time breakdown and boundedness — then sweeps the serving batch size on each
device to find its throughput knee.  This is the deployment-engineer's view
that motivates accelerator-aware search.

Run:  python examples/hw_profiling_tour.py
"""

from repro.hwsim import get_device
from repro.hwsim.batch_sweep import sweep_batches
from repro.hwsim.profile import profile_arch
from repro.searchspace.baselines import EFFICIENTNET_B0

DEVICES = ("a100", "tpuv3", "zcu102", "vck190")


def main() -> None:
    arch = EFFICIENTNET_B0.arch
    print(f"Model: EfficientNet-B0 ({arch.to_string()})\n")

    for name in DEVICES:
        device = get_device(name)
        print(profile_arch(arch, device).report(k=3))
        print()

    print("Batch-size knees (smallest batch at 90% of saturated throughput):")
    for name in DEVICES:
        sweep = sweep_batches(arch, get_device(name))
        knee = sweep.knee()
        print(
            f"  {name:8s} knee at batch {knee.batch:3d} "
            f"({knee.throughput_ips:8.1f} img/s, {knee.latency_ms:7.2f} ms/batch; "
            f"saturated {sweep.saturated_throughput:8.1f} img/s)"
        )

    print(
        "\nReading: on the DPUs the squeeze-excite CPU fallback dominates and\n"
        "the knee arrives almost immediately (the array is already busy); on\n"
        "the GPU/TPU depthwise stages are bandwidth-bound and large batches\n"
        "are needed to amortise launch/dispatch overheads."
    )


if __name__ == "__main__":
    main()
