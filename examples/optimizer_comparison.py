"""Compare NAS optimizers on the zero-cost benchmark (paper Fig. 5 setting).

Runs Random Search, Regularized Evolution, REINFORCE and Local Search against
the accuracy surrogate and prints their incumbent trajectories.  On the
MnasNet space, random search stagnates early while the guided optimizers keep
improving — the behaviour Fig. 5 documents.

Run:  python examples/optimizer_comparison.py
"""

import numpy as np

from repro import AccelNASBench, P_STAR
from repro.optimizers import (
    BoNas,
    LocalSearch,
    RandomSearch,
    RegularizedEvolution,
    Reinforce,
)

BUDGET = 500
SEEDS = (0, 1, 2)


def main() -> None:
    print("Building accuracy-only benchmark (600 archs)...")
    bench, _ = AccelNASBench.build(P_STAR, num_archs=600, devices={})

    optimizers = {
        "RandomSearch": RandomSearch,
        "RegularizedEvolution": RegularizedEvolution,
        "REINFORCE": Reinforce,
        "LocalSearch": LocalSearch,
        "BO-NAS (RF+EI)": BoNas,
    }
    checkpoints = (50, 150, 300, BUDGET - 1)
    print(f"\nIncumbent accuracy (mean of {len(SEEDS)} seeds), budget {BUDGET}:")
    print("  optimizer              " + "  ".join(f"@{c+1:4d}" for c in checkpoints))
    for name, factory in optimizers.items():
        curves = [
            factory(seed=s).run(bench.query_accuracy, BUDGET).incumbent_curve()
            for s in SEEDS
        ]
        mean_curve = np.mean(np.stack(curves), axis=0)
        row = "  ".join(f"{mean_curve[c]:.4f}" for c in checkpoints)
        print(f"  {name:22s}{row}")


if __name__ == "__main__":
    main()
