"""Fault-tolerant collection tour: faults, retries, quarantine, resume.

Demonstrates the reliability layer end to end, entirely deterministically:

1. inject seeded faults (NaN + transient timeouts) into a collection and
   watch retries heal the transients while persistent failures quarantine;
2. kill a journaled run with an injected crash, then resume it and verify
   the artifact is byte-identical to an uninterrupted run;
3. corrupt a saved artifact and watch the integrity check catch it.

Run with::

    PYTHONPATH=src python examples/fault_tolerant_collection.py
"""

import tempfile
from pathlib import Path

from repro.core.dataset import collect_accuracy_dataset, sample_dataset_archs
from repro.core.reliability import (
    ArtifactIntegrityError,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    RetryPolicy,
)
from repro.trainsim.schemes import P_STAR

ARCHS = 40


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="anb-reliability-"))
    archs = sample_dataset_archs(ARCHS, seed=0)
    victim = archs[ARCHS // 2].to_string()

    # -- 1. Retry + quarantine under injected faults -----------------------
    plan = FaultPlan(
        [
            FaultSpec("timeout", rate=1.0, max_attempt=1),  # heals on retry
            FaultSpec("nan", keys=[victim]),                # never heals
        ],
        seed=7,
    )
    sleeps: list[float] = []
    policy = RetryPolicy(max_attempts=3, sleep=sleeps.append)
    ds = collect_accuracy_dataset(
        archs,
        P_STAR,
        fault_plan=plan,
        retry_policy=policy,
        min_success_fraction=0.9,
    )
    print(f"collected {len(ds)}/{ARCHS} archs under injected faults")
    print(f"  retries backed off {len(sleeps)}x (recorded, not slept)")
    for record in ds.quarantine:
        print(f"  quarantined {record.key[:24]}... after "
              f"{record.attempts} attempts ({record.error})")

    # -- 2. Kill-and-resume byte identity ----------------------------------
    journal = workdir / "ANB-Acc.jsonl"
    try:
        collect_accuracy_dataset(
            archs, P_STAR, fault_plan=FaultPlan.crash_on([victim]),
            journal=journal,
        )
    except InjectedCrash as exc:
        print(f"run killed: {exc}")
    resumed = collect_accuracy_dataset(
        archs, P_STAR, journal=journal, resume=True
    )
    clean = collect_accuracy_dataset(archs, P_STAR)
    resumed_path, clean_path = workdir / "resumed.json", workdir / "clean.json"
    resumed.to_json(resumed_path)
    clean.to_json(clean_path)
    identical = resumed_path.read_bytes() == clean_path.read_bytes()
    print(f"resumed artifact byte-identical to uninterrupted: {identical}")

    # -- 3. Artifact integrity ---------------------------------------------
    text = clean_path.read_text()
    clean_path.write_text(text.replace("0.7", "0.9", 1))  # silent corruption
    try:
        type(clean).from_json(clean_path)
    except ArtifactIntegrityError as exc:
        print(f"corruption caught: {exc.reason[:60]}...")


if __name__ == "__main__":
    main()
