"""Serving smoke drill: breaker trip + recovery, hot reload, graceful drain.

Starts ``repro.cli serve`` as a real subprocess against a packed columnar
store with an injected-error drill window (``error:1.0@5``), then drives it
over HTTP and asserts the full robustness story end to end:

1. the first five queries hit injected faults (500) and trip the circuit
   breaker, which then rejects fast with 503 + Retry-After;
2. after the cooldown the breaker probes, the drill window has healed, and
   the endpoint recovers to 200;
3. a hot reload (``POST /reload``) swaps the benchmark in place without
   dropping the service (generation bumps, queries keep answering);
4. ``/healthz`` is green at exit and SIGINT drains cleanly (exit code 0).

Run with::

    PYTHONPATH=src python examples/serve_smoke.py <store-path> [metrics.jsonl]
"""

import asyncio
import signal
import subprocess
import sys
import time

from repro.serve.http import request

DRILL_WINDOW = 5


def _start_server(store: str, metrics_out: str | None) -> subprocess.Popen:
    cmd = [
        sys.executable,
        "-u",
        "-m",
        "repro.cli",
        "serve",
        "--bench",
        store,
        "--port",
        "0",
        "--drills",
        f"error:1.0@{DRILL_WINDOW}",
        "--failure-threshold",
        str(DRILL_WINDOW),
        "--log-json",
    ]
    if metrics_out:
        cmd += ["--metrics-out", metrics_out]
    return subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )


def _wait_for_port(proc: subprocess.Popen) -> int:
    line = proc.stdout.readline()
    if "http://" not in line:
        raise RuntimeError(f"server did not start: {line!r}")
    return int(line.rsplit(":", 1)[1])


async def _drive(port: int, store: str, arch: str) -> None:
    payload = {"arch": arch, "device": "a100", "metric": "throughput"}

    # 1. The drill window injects faults until the breaker trips.
    statuses = []
    for _ in range(DRILL_WINDOW + 1):
        status, _, body = await request("127.0.0.1", port, "POST", "/query", payload)
        statuses.append(status)
    assert statuses[:DRILL_WINDOW] == [500] * DRILL_WINDOW, statuses
    assert statuses[-1] == 503, statuses
    status, headers, body = await request("127.0.0.1", port, "POST", "/query", payload)
    assert status == 503 and body == {"error": "circuit open"}, (status, body)
    retry_after = float(headers["retry-after"])
    print(f"breaker tripped after {DRILL_WINDOW} faults; retry-after {retry_after}s")

    # 2. Cooldown elapses, the probe lands past the window, service recovers.
    deadline = time.monotonic() + max(5.0, 3 * retry_after)
    while True:
        await asyncio.sleep(retry_after)
        status, _, body = await request("127.0.0.1", port, "POST", "/query", payload)
        if status == 200:
            break
        assert status == 503, (status, body)
        assert time.monotonic() < deadline, "breaker never recovered"
    baseline = body
    print(f"breaker recovered; accuracy {body['accuracy']:.4f}")

    # 3. Hot reload keeps answers identical and bumps the generation.
    status, _, body = await request(
        "127.0.0.1", port, "POST", "/reload", {"path": store}
    )
    assert status == 200 and body["generation"] == 1, (status, body)
    status, _, body = await request("127.0.0.1", port, "POST", "/query", payload)
    assert status == 200 and body == baseline, (status, body)
    print(f"hot reload ok; generation {1}, answers unchanged")

    # 4. Health is green before shutdown.
    status, _, body = await request("127.0.0.1", port, "GET", "/healthz")
    assert status == 200 and body["status"] == "ok", (status, body)
    print("healthz green")


def main() -> int:
    store = sys.argv[1]
    metrics_out = sys.argv[2] if len(sys.argv) > 2 else None
    sys.path.insert(0, "src")
    from repro.core.dataset import sample_dataset_archs

    arch = sample_dataset_archs(1)[0].to_string()
    proc = _start_server(store, metrics_out)
    try:
        port = _wait_for_port(proc)
        asyncio.run(_drive(port, store, arch))
    except BaseException:
        proc.kill()
        raise
    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    tail = proc.stdout.read()
    assert code == 0, f"server exited {code}"
    assert "drained" in tail, tail
    print("graceful drain ok; serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
