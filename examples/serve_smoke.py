"""Serving smoke drill: breaker trip + recovery, hot reload, graceful drain.

Starts ``repro.cli serve`` as a real subprocess against a packed columnar
store with an injected-error drill window (``error:1.0@5``), then drives it
over HTTP and asserts the full robustness story end to end:

1. the first five queries hit injected faults (500) and trip the circuit
   breaker, which then rejects fast with 503 + Retry-After;
2. after the cooldown the breaker probes, the drill window has healed, and
   the endpoint recovers to 200;
3. a hot reload (``POST /reload``) swaps the benchmark in place without
   dropping the service (generation bumps, queries keep answering);
4. the live telemetry plane answers: a ``traceparent``-bearing query echoes
   the header, ``GET /metrics`` serves Prometheus text with windowed
   latency quantiles, and ``GET /tracez`` returns the span ring (both
   scrapes are saved for ``python -m repro.obs.validate``);
5. ``/healthz`` is green at exit and SIGINT drains cleanly (exit code 0).

Run with::

    PYTHONPATH=src python examples/serve_smoke.py <store-path> \
        [metrics.jsonl] [scrape.prom] [tracez.json]
"""

import asyncio
import signal
import subprocess
import sys
import time

from repro.serve.http import _read_response, _render_request, request

DRILL_WINDOW = 5


async def _raw_get(
    port: int, path: str, headers: dict | None = None
) -> tuple[int, dict, bytes]:
    """GET returning raw body bytes (for the non-JSON /metrics scrape)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(_render_request("GET", path, b"", False, headers=headers))
    await writer.drain()
    status, resp_headers, body = await _read_response(reader)
    writer.close()
    return status, resp_headers, body


def _start_server(store: str, metrics_out: str | None) -> subprocess.Popen:
    cmd = [
        sys.executable,
        "-u",
        "-m",
        "repro.cli",
        "serve",
        "--bench",
        store,
        "--port",
        "0",
        "--drills",
        f"error:1.0@{DRILL_WINDOW}",
        "--failure-threshold",
        str(DRILL_WINDOW),
        "--log-json",
    ]
    if metrics_out:
        cmd += ["--metrics-out", metrics_out]
    return subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True
    )


def _wait_for_port(proc: subprocess.Popen) -> int:
    line = proc.stdout.readline()
    if "http://" not in line:
        raise RuntimeError(f"server did not start: {line!r}")
    return int(line.rsplit(":", 1)[1])


async def _drive(
    port: int,
    store: str,
    arch: str,
    prom_out: str | None = None,
    tracez_out: str | None = None,
) -> None:
    payload = {"arch": arch, "device": "a100", "metric": "throughput"}

    # 1. The drill window injects faults until the breaker trips.
    statuses = []
    for _ in range(DRILL_WINDOW + 1):
        status, _, body = await request("127.0.0.1", port, "POST", "/query", payload)
        statuses.append(status)
    assert statuses[:DRILL_WINDOW] == [500] * DRILL_WINDOW, statuses
    assert statuses[-1] == 503, statuses
    status, headers, body = await request("127.0.0.1", port, "POST", "/query", payload)
    assert status == 503 and body == {"error": "circuit open"}, (status, body)
    retry_after = float(headers["retry-after"])
    print(f"breaker tripped after {DRILL_WINDOW} faults; retry-after {retry_after}s")

    # 2. Cooldown elapses, the probe lands past the window, service recovers.
    deadline = time.monotonic() + max(5.0, 3 * retry_after)
    while True:
        await asyncio.sleep(retry_after)
        status, _, body = await request("127.0.0.1", port, "POST", "/query", payload)
        if status == 200:
            break
        assert status == 503, (status, body)
        assert time.monotonic() < deadline, "breaker never recovered"
    baseline = body
    print(f"breaker recovered; accuracy {body['accuracy']:.4f}")

    # 3. Hot reload keeps answers identical and bumps the generation.
    status, _, body = await request(
        "127.0.0.1", port, "POST", "/reload", {"path": store}
    )
    assert status == 200 and body["generation"] == 1, (status, body)
    status, _, body = await request("127.0.0.1", port, "POST", "/query", payload)
    assert status == 200 and body == baseline, (status, body)
    print(f"hot reload ok; generation {1}, answers unchanged")

    # 4. The live telemetry plane answers over the same socket.
    traceparent = f"00-{'ab' * 16}-{'cd' * 8}-01"
    async def traced_query():
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        import json as _json

        raw = _json.dumps(payload, sort_keys=True).encode()
        writer.write(
            _render_request(
                "POST", "/query", raw, False,
                headers={"traceparent": traceparent},
            )
        )
        await writer.drain()
        status, headers, _ = await _read_response(reader)
        writer.close()
        return status, headers

    status, headers = await traced_query()
    assert status == 200, status
    echoed = headers.get("traceparent", "")
    assert echoed.startswith(f"00-{'ab' * 16}-"), echoed
    print(f"traceparent echoed under the caller's trace: {echoed}")

    status, headers, prom = await _raw_get(port, "/metrics")
    assert status == 200, status
    assert "version=0.0.4" in headers["content-type"], headers
    text = prom.decode("utf-8")
    assert "anb_serve_latency_window_query" in text, text[:400]
    assert 'quantile="0.99"' in text, text[:400]
    if prom_out:
        with open(prom_out, "w", encoding="utf-8") as fh:
            fh.write(text)
    print(f"/metrics scrape ok ({len(text.splitlines())} exposition lines)")

    status, _, tracez = await _raw_get(port, "/tracez")
    assert status == 200, status
    import json as _json

    snapshot = _json.loads(tracez)
    names = {entry["name"] for entry in snapshot["entries"]}
    assert "serve.query" in names, names
    assert "serve.query_batch" in names, names
    if tracez_out:
        with open(tracez_out, "w", encoding="utf-8") as fh:
            fh.write(tracez.decode("utf-8"))
    print(f"/tracez ok ({len(snapshot['entries'])} spans retained)")

    status, _, profile = await _raw_get(port, "/debug/profile?seconds=0.2")
    assert status == 200, status
    print(f"/debug/profile ok ({len(profile.splitlines())} hot stacks)")

    # 5. Health is green before shutdown.
    status, _, body = await request("127.0.0.1", port, "GET", "/healthz")
    assert status == 200 and body["status"] == "ok", (status, body)
    print("healthz green")


def main() -> int:
    store = sys.argv[1]
    metrics_out = sys.argv[2] if len(sys.argv) > 2 else None
    prom_out = sys.argv[3] if len(sys.argv) > 3 else None
    tracez_out = sys.argv[4] if len(sys.argv) > 4 else None
    sys.path.insert(0, "src")
    from repro.core.dataset import sample_dataset_archs

    arch = sample_dataset_archs(1)[0].to_string()
    proc = _start_server(store, metrics_out)
    try:
        port = _wait_for_port(proc)
        asyncio.run(_drive(port, store, arch, prom_out, tracez_out))
    except BaseException:
        proc.kill()
        raise
    proc.send_signal(signal.SIGINT)
    code = proc.wait(timeout=30)
    tail = proc.stdout.read()
    assert code == 0, f"server exited {code}"
    assert "drained" in tail, tail
    print("graceful drain ok; serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
