"""Second search space: build a benchmark on the ProxylessNAS-style space.

The paper defers additional search spaces to its repository; this example
shows the whole Accel-NASBench pipeline is search-space agnostic.  A
per-layer op space (MBConv kernel/expansion choices plus layer skipping) on
the MobileNetV2 backbone is sampled, trained with the proxy scheme, measured
on two accelerators, and fitted with an XGB surrogate — then searched
bi-objectively.

Run:  python examples/proxyless_space_demo.py
"""

import numpy as np

from repro.core.dataset import BenchmarkDataset
from repro.core.surrogate_fit import SurrogateFitter
from repro.hwsim import MeasurementHarness, get_device
from repro.optimizers import Reinforce
from repro.searchspace.proxyless import (
    NUM_LAYERS,
    PROXYLESS_OPS,
    ProxylessArch,
    ProxylessSearchSpace,
)
from repro.trainsim import P_STAR, SimulatedTrainer

NUM_ARCHS = 600
DEVICE = "zcu102"


class ProxylessEncoder:
    """One-hot encoding of the 21 per-layer op choices."""

    def __init__(self) -> None:
        self.encoding = "proxyless-onehot"

    def encode(self, archs) -> np.ndarray:
        rows = []
        for arch in archs:
            row = []
            for op in arch.ops:
                row.extend(1.0 if op == o else 0.0 for o in PROXYLESS_OPS)
            rows.append(row)
        return np.asarray(rows)


def main() -> None:
    space = ProxylessSearchSpace(seed=0)
    trainer = SimulatedTrainer()
    harness = MeasurementHarness(get_device(DEVICE))

    print(f"Proxyless space: {NUM_LAYERS} searchable layers, {space.size:.2e} archs")
    print(f"Collecting {NUM_ARCHS} architectures (accuracy + {DEVICE})...")
    archs = space.sample_batch(NUM_ARCHS, unique=True)
    acc = BenchmarkDataset(
        "PROX-Acc",
        "accuracy",
        archs,
        np.asarray([trainer.train(a, P_STAR, 0).top1 for a in archs]),
    )
    thr = BenchmarkDataset(
        f"PROX-{DEVICE}-Thr",
        "throughput",
        archs,
        np.asarray([harness.measure_throughput(a) for a in archs]),
    )

    fitter = SurrogateFitter(encoder=ProxylessEncoder())
    acc_report = fitter.fit(acc, "xgb")
    thr_report = fitter.fit(thr, "xgb")
    print(f"  accuracy surrogate   {acc_report.row()}")
    print(f"  throughput surrogate {thr_report.row()}")

    print("\nBi-objective REINFORCE on the proxyless surrogates...")
    encoder = fitter.encoder
    result = Reinforce(space=space, seed=0).run_biobjective(
        accuracy_fn=lambda a: float(acc_report.model.predict(encoder.encode([a]))[0]),
        perf_fn=lambda a: float(
            max(thr_report.model.predict(encoder.encode([a]))[0], 1e-6)
        ),
        target=1500.0,
        budget=400,
        metric="throughput",
        device=DEVICE,
    )
    print(f"pareto front ({len(result.pareto_indices())} points), extremes:")
    front = result.pareto_points()
    front.sort(key=lambda t: t[1])
    for arch, a, p in (front[0], front[-1]):
        print(f"  acc={a:.4f} thr={p:7.1f} img/s  skips={NUM_LAYERS - arch.total_layers}")


if __name__ == "__main__":
    main()
