"""CLI coverage for ``python -m repro.devtools.analyze`` and
``repro.cli analyze``: exit codes, reporters, baseline workflow."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.devtools.analyze.runner import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    main as analyze_main,
)

from tests.devtools.analyze_helpers import SCAFFOLD, write_tree

BAD_PIPELINE = {
    "repro/pipeline.py": """\
        from repro import obs
        from repro.core.parallel import deterministic_map

        RESULTS = {}

        def worker(item):
            RESULTS[item] = item
            return item

        def run(items):
            return deterministic_map(worker, items)
        """,
}

CLEAN_PIPELINE = {
    "repro/pipeline.py": """\
        from repro.core.parallel import deterministic_map

        def worker(item):
            return item * 2

        def run(items):
            return deterministic_map(worker, items)
        """,
}


@pytest.fixture
def bad_tree(tmp_path, monkeypatch):
    write_tree(tmp_path, {**SCAFFOLD, **BAD_PIPELINE})
    monkeypatch.chdir(tmp_path)
    return tmp_path


@pytest.fixture
def clean_tree(tmp_path, monkeypatch):
    write_tree(tmp_path, {**SCAFFOLD, **CLEAN_PIPELINE})
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestRunnerCli:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert analyze_main(["repro", "--no-baseline"]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one_with_location(self, bad_tree, capsys):
        assert analyze_main(["repro", "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "ANB101" in out
        assert "repro/pipeline.py" in out
        assert "repro.pipeline.worker" in out

    def test_json_format_is_parseable(self, bad_tree, capsys):
        analyze_main(["repro", "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "ANB101"
        assert payload["stats"]["modules"] >= 5

    def test_sarif_format_is_valid(self, bad_tree, capsys):
        analyze_main(["repro", "--no-baseline", "--format", "sarif"])
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        assert run["results"], "expected at least one SARIF result"
        result = run["results"][0]
        assert result["ruleId"] == "ANB101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("pipeline.py")
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "ANB101" in rule_ids

    def test_select_filters_families(self, bad_tree):
        assert (
            analyze_main(["repro", "--no-baseline", "--select", "anb102"])
            == EXIT_CLEAN
        )

    def test_unknown_rule_id_is_usage_error(self, bad_tree, capsys):
        assert (
            analyze_main(["repro", "--no-baseline", "--select", "ANB999"])
            == EXIT_ERROR
        )
        assert "unknown analysis id" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, bad_tree, capsys):
        assert analyze_main(["nope", "--no-baseline"]) == EXIT_ERROR


class TestBaselineWorkflow:
    def test_update_then_clean_then_stale(self, bad_tree, capsys):
        # 1. Park the known finding in the baseline.
        assert analyze_main(["repro", "--update-baseline"]) == EXIT_CLEAN
        baseline = json.loads(
            (bad_tree / "analyze-baseline.json").read_text(encoding="utf-8")
        )
        assert len(baseline["entries"]) == 1
        capsys.readouterr()

        # 2. With the baseline in place the gate is green.
        assert analyze_main(["repro"]) == EXIT_CLEAN

        # 3. Fix the race: the entry is now stale and fails the run.
        write_tree(bad_tree, CLEAN_PIPELINE)
        assert analyze_main(["repro"]) == EXIT_FINDINGS
        assert "stale baseline entry" in capsys.readouterr().err

    def test_expired_entry_resurfaces(self, bad_tree, capsys):
        analyze_main(["repro", "--update-baseline"])
        path = bad_tree / "analyze-baseline.json"
        baseline = json.loads(path.read_text(encoding="utf-8"))
        baseline["entries"][0]["expires"] = "2020-01-01"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        capsys.readouterr()

        assert analyze_main(["repro"]) == EXIT_FINDINGS
        captured = capsys.readouterr()
        assert "expired" in captured.err
        assert "ANB101" in captured.out

    def test_malformed_baseline_is_error(self, bad_tree, capsys):
        (bad_tree / "analyze-baseline.json").write_text(
            "{broken", encoding="utf-8"
        )
        assert analyze_main(["repro"]) == EXIT_ERROR


class TestReproCliForwarding:
    def test_analyze_subcommand_forwards(self, bad_tree, capsys):
        assert cli_main(["analyze", "repro", "--no-baseline"]) == EXIT_FINDINGS
        assert "ANB101" in capsys.readouterr().out

    def test_analyze_subcommand_select_and_format(self, bad_tree, capsys):
        code = cli_main(
            [
                "analyze",
                "repro",
                "--no-baseline",
                "--select",
                "ANB101",
                "--format",
                "json",
            ]
        )
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"ANB101"}

    def test_analyze_over_real_tree_is_clean(self, capsys):
        assert cli_main(["analyze"]) == EXIT_CLEAN
