"""Parallel lint execution and the content cache: byte-identical output
for any worker count, warm-run reuse, and sound invalidation."""

from __future__ import annotations

import json
import textwrap

from repro.devtools.lint import lint_paths
from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.runner import main as lint_main

VIOLATION = """\
    import numpy as np

    _TABLE = np.random.default_rng(7).uniform(size=4)
    """

CLEAN = """\
    def double(x):
        return x * 2
    """


def make_tree(tmp_path, n_clean=6):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("", encoding="utf-8")
    (root / "bad.py").write_text(textwrap.dedent(VIOLATION), encoding="utf-8")
    for i in range(n_clean):
        (root / f"mod{i}.py").write_text(
            textwrap.dedent(CLEAN), encoding="utf-8"
        )
    return root


class TestParallelDeterminism:
    def test_output_identical_across_worker_counts(self, tmp_path):
        root = make_tree(tmp_path)
        config = LintConfig()
        serial = lint_paths([root], config, n_jobs=1)
        fanned = lint_paths([root], config, n_jobs=4)
        maxed = lint_paths([root], config, n_jobs=-1)
        assert serial.findings == fanned.findings == maxed.findings
        assert serial.findings, "fixture should produce findings"

    def test_findings_are_path_sorted(self, tmp_path):
        root = make_tree(tmp_path)
        (root / "also_bad.py").write_text(
            textwrap.dedent(VIOLATION), encoding="utf-8"
        )
        result = lint_paths([root], LintConfig(), n_jobs=4)
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)


class TestContentCache:
    def test_warm_run_reuses_cache(self, tmp_path):
        root = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        cold = lint_paths([root], config, cache_path=cache)
        assert cold.files_cached == 0
        warm = lint_paths([root], config, cache_path=cache)
        # Everything except __init__.py is served from cache.
        assert warm.files_cached == warm.files_checked - 1
        assert warm.findings == cold.findings

    def test_edited_file_is_relinted(self, tmp_path):
        root = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        lint_paths([root], config, cache_path=cache)
        # The edit introduces a violation; a stale cache would hide it.
        (root / "mod0.py").write_text(
            textwrap.dedent(VIOLATION), encoding="utf-8"
        )
        warm = lint_paths([root], config, cache_path=cache)
        assert any(f.path.endswith("mod0.py") for f in warm.findings)

    def test_touched_but_unchanged_file_hits_sha_fallback(self, tmp_path):
        import os

        root = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        config = LintConfig()
        lint_paths([root], config, cache_path=cache)
        target = root / "mod0.py"
        os.utime(target, ns=(1, 1))  # mtime drifts, content identical
        warm = lint_paths([root], config, cache_path=cache)
        assert warm.files_cached == warm.files_checked - 1

    def test_config_change_invalidates_cache(self, tmp_path):
        root = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([root], LintConfig(), cache_path=cache)
        narrowed = lint_paths(
            [root], LintConfig(select=("ANB004",)), cache_path=cache
        )
        assert narrowed.files_cached == 0

    def test_package_init_never_cached(self, tmp_path):
        root = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([root], LintConfig(), cache_path=cache)
        entries = json.loads(cache.read_text(encoding="utf-8"))["entries"]
        assert not any(key.endswith("__init__.py") for key in entries)

    def test_no_cache_path_disables_caching(self, tmp_path):
        root = make_tree(tmp_path)
        result = lint_paths([root], LintConfig(), cache_path=None)
        assert result.files_cached == 0

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        root = make_tree(tmp_path)
        cache = tmp_path / "cache.json"
        cache.write_text("{definitely not json", encoding="utf-8")
        result = lint_paths([root], LintConfig(), cache_path=cache)
        assert result.files_cached == 0
        assert result.findings  # run proceeded normally


class TestCliFlags:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        cache = tmp_path / "cli-cache.json"
        code = lint_main(
            [str(root), "--jobs", "2", "--cache", str(cache)]
        )
        assert code == 1  # the fixture violation
        assert cache.is_file()
        out_cold = capsys.readouterr().out
        code = lint_main(
            [str(root), "--jobs", "4", "--cache", str(cache)]
        )
        assert code == 1
        assert capsys.readouterr().out == out_cold

    def test_no_cache_flag(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        code = lint_main([str(root), "--no-cache", "--jobs", "2"])
        assert code == 1
        assert not (tmp_path / ".repro-lint-cache.json").exists()

    def test_repro_cli_forwards_jobs(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main as cli_main

        monkeypatch.chdir(tmp_path)
        root = make_tree(tmp_path)
        code = cli_main(["lint", str(root), "--jobs", "2", "--no-cache"])
        assert code == 1
        assert "ANB001" in capsys.readouterr().out
