"""Project loader and call-graph coverage: symbol tables, re-export
canonicalisation, import cycles, ``__all__``, and worker-set discovery."""

from __future__ import annotations

import pytest

from repro.devtools.analyze import AnalyzeConfig, Project, build_call_graph
from repro.devtools.analyze.core import AnalysisContext

from tests.devtools.analyze_helpers import SCAFFOLD, write_tree


def load_project(tmp_path, files):
    write_tree(tmp_path, files)
    return Project.load([tmp_path / "repro"])


class TestModuleGraph:
    def test_loads_every_module_with_dotted_names(self, tmp_path):
        project = load_project(tmp_path, SCAFFOLD)
        assert set(project.modules) == {
            "repro",
            "repro.core",
            "repro.core.parallel",
            "repro.core.reliability",
            "repro.obs",
        }

    def test_syntax_error_is_recorded_not_fatal(self, tmp_path):
        files = {**SCAFFOLD, "repro/broken.py": "def broken(:\n"}
        project = load_project(tmp_path, files)
        assert len(project.parse_errors) == 1
        assert "repro.broken" not in project.modules
        # The rest of the tree still loaded.
        assert "repro.core.parallel" in project.modules

    def test_function_qualnames_cover_methods_and_nested(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/shapes.py": """\
                class Box:
                    def volume(self):
                        def cube(x):
                            return x ** 3
                        return cube(2)
                """,
        }
        project = load_project(tmp_path, files)
        assert "repro.shapes.Box.volume" in project.functions
        assert (
            "repro.shapes.Box.volume.<locals>.cube" in project.functions
        )

    def test_same_named_redefinition_gets_lineno_suffix(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/dup.py": """\
                def outer(flag):
                    def work(x):
                        return x
                    if flag:
                        def work(x):
                            return x + 1
                    return work
                """,
        }
        project = load_project(tmp_path, files)
        variants = [
            q
            for q in project.functions
            if q.startswith("repro.dup.outer.<locals>.work")
        ]
        assert len(variants) == 2
        assert any("@" in q for q in variants)


class TestCanonicalisation:
    def test_init_reexport_resolves_to_defining_module(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/api/__init__.py": """\
                from repro.api.impl import compute

                __all__ = ["compute"]
                """,
            "repro/api/impl.py": """\
                def compute(x):
                    return x * 2
                """,
        }
        project = load_project(tmp_path, files)
        assert (
            project.canonical("repro.api.compute") == "repro.api.impl.compute"
        )

    def test_package_binding_beats_same_named_submodule(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/tools/__init__.py": """\
                from repro.tools.metrics import metrics
                """,
            "repro/tools/metrics.py": """\
                def metrics():
                    return {}
                """,
        }
        project = load_project(tmp_path, files)
        # repro.tools.metrics the *name* means the re-exported function.
        assert (
            project.canonical("repro.tools.metrics")
            == "repro.tools.metrics.metrics"
        )

    def test_import_cycle_terminates(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/a.py": """\
                from repro.b import beta

                def alpha():
                    return beta()
                """,
            "repro/b.py": """\
                from repro.a import alpha

                def beta():
                    return 1
                """,
        }
        project = load_project(tmp_path, files)
        # Neither canonicalisation loops forever.
        assert project.canonical("repro.a.beta") == "repro.b.beta"
        assert project.canonical("repro.b.alpha") == "repro.a.alpha"

    def test_aliased_import_resolves(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/user.py": """\
                from repro.core import parallel as par

                def fan(items):
                    return par.deterministic_map(len, items)
                """,
        }
        project = load_project(tmp_path, files)
        module = project.modules["repro.user"]
        symbol = project.resolve(module, "par.deterministic_map")
        assert symbol is not None
        assert symbol.target == "repro.core.parallel.deterministic_map"


class TestCallGraph:
    def test_cross_module_edge(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/caller.py": """\
                from repro.core.reliability import write_artifact

                def persist(path, payload):
                    return write_artifact(path, payload)
                """,
        }
        project = load_project(tmp_path, files)
        graph = build_call_graph(project)
        assert (
            "repro.core.reliability.write_artifact"
            in graph.callees("repro.caller.persist")
        )

    def test_reachability_is_transitive(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/chain.py": """\
                def leaf():
                    return 1

                def middle():
                    return leaf()

                def top():
                    return middle()
                """,
        }
        project = load_project(tmp_path, files)
        graph = build_call_graph(project)
        reached = graph.reachable(["repro.chain.top"])
        assert "repro.chain.leaf" in reached

    def test_worker_set_covers_lambda_and_named_args(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/pipeline.py": """\
                from repro.core.parallel import deterministic_map

                def helper(x):
                    return x + 1

                def run(items):
                    doubled = deterministic_map(lambda x: helper(x), items)
                    named = deterministic_map(helper, items)
                    return doubled, named
                """,
        }
        write_tree(tmp_path, files)
        ctx = AnalysisContext.build(
            [tmp_path / "repro"], AnalyzeConfig(baseline=None)
        )
        assert "repro.pipeline.helper" in ctx.worker_set
        assert any("<lambda" in q for q in ctx.worker_set)

    def test_unresolvable_call_under_approximates(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/opaque.py": """\
                def run(factory, items):
                    worker = factory()
                    return [worker(item) for item in items]
                """,
        }
        project = load_project(tmp_path, files)
        graph = build_call_graph(project)
        callees = graph.callees("repro.opaque.run")
        # ``worker`` cannot be resolved statically; no edge is invented.
        assert all("worker" not in callee for callee in callees)


class TestArtifactFacts:
    def test_reaches_artifacts_through_call_chain(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/out.py": """\
                from repro.core.reliability import write_artifact

                def inner(path):
                    return write_artifact(path, {})

                def outer(path):
                    return inner(path)

                def unrelated():
                    return 7
                """,
        }
        write_tree(tmp_path, files)
        ctx = AnalysisContext.build(
            [tmp_path / "repro"], AnalyzeConfig(baseline=None)
        )
        assert "repro.out.inner" in ctx.reaches_artifacts
        assert "repro.out.outer" in ctx.reaches_artifacts
        assert "repro.out.unrelated" not in ctx.reaches_artifacts

    def test_bare_sink_matches_method_calls(self, tmp_path):
        files = {
            **SCAFFOLD,
            "repro/saver.py": """\
                def persist(bench, path):
                    bench.save(path)
                """,
        }
        write_tree(tmp_path, files)
        ctx = AnalysisContext.build(
            [tmp_path / "repro"], AnalyzeConfig(baseline=None)
        )
        assert "repro.saver.persist" in ctx.artifact_writers


@pytest.mark.parametrize("missing", ["nonexistent-dir"])
def test_missing_root_raises_project_error(tmp_path, missing):
    from repro.devtools.analyze import ProjectError

    with pytest.raises(ProjectError):
        Project.load([tmp_path / missing])
