"""Taint-engine coverage: propagation through assignments, calls,
branches, loops, containers, and the policy hooks."""

from __future__ import annotations

import ast

from repro.devtools.analyze import TaintPolicy, reaching_parameters, run_taint
from repro.devtools.analyze.project import FunctionInfo


def make_func(source: str) -> FunctionInfo:
    tree = ast.parse(source)
    node = tree.body[0]
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    return FunctionInfo(qualname=f"fix.{node.name}", module="fix", node=node)


def first_call(func: FunctionInfo, name: str) -> ast.Call:
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Name) and target.id == name:
                return node
            if isinstance(target, ast.Attribute) and target.attr == name:
                return node
    raise AssertionError(f"no call to {name}")


class TestReachingParameters:
    def test_direct_and_assigned_use(self):
        func = make_func(
            "def f(seed):\n"
            "    s = seed\n"
            "    sink(s)\n"
        )
        taint = reaching_parameters(func)
        call = first_call(func, "sink")
        assert "param:seed" in taint.labels_of(call.args[0])

    def test_flows_through_arithmetic_and_calls(self):
        func = make_func(
            "def f(seed):\n"
            "    derived = transform(seed * 7 + 1)\n"
            "    sink(derived)\n"
        )
        taint = reaching_parameters(func)
        call = first_call(func, "sink")
        assert "param:seed" in taint.labels_of(call.args[0])

    def test_rebinding_clears_labels(self):
        func = make_func(
            "def f(seed):\n"
            "    value = seed\n"
            "    value = 0\n"
            "    sink(value)\n"
        )
        taint = reaching_parameters(func)
        call = first_call(func, "sink")
        assert taint.labels_of(call.args[0]) == frozenset()

    def test_branches_join(self):
        func = make_func(
            "def f(seed, other, flag):\n"
            "    if flag:\n"
            "        value = seed\n"
            "    else:\n"
            "        value = other\n"
            "    sink(value)\n"
        )
        taint = reaching_parameters(func)
        labels = taint.labels_of(first_call(func, "sink").args[0])
        assert {"param:seed", "param:other"} <= set(labels)

    def test_loop_back_edge_reaches_use(self):
        # ``carry`` is only tainted at the *end* of the body; the second
        # pass makes that definition reach the top-of-body use.
        func = make_func(
            "def f(seed, items):\n"
            "    carry = 0\n"
            "    for item in items:\n"
            "        sink(carry)\n"
            "        carry = seed\n"
            "    return carry\n"
        )
        taint = reaching_parameters(func)
        labels = taint.labels_of(first_call(func, "sink").args[0])
        assert "param:seed" in labels

    def test_container_write_taints_base(self):
        func = make_func(
            "def f(seed):\n"
            "    payload = {}\n"
            "    payload['s'] = seed\n"
            "    sink(payload)\n"
        )
        taint = reaching_parameters(func)
        labels = taint.labels_of(first_call(func, "sink").args[0])
        assert "param:seed" in labels

    def test_return_labels_accumulate(self):
        func = make_func(
            "def f(seed, flag):\n"
            "    if flag:\n"
            "        return seed\n"
            "    return 0\n"
        )
        taint = reaching_parameters(func)
        assert "param:seed" in taint.return_labels

    def test_comprehension_propagates_iter_labels(self):
        func = make_func(
            "def f(seed):\n"
            "    values = [x + 1 for x in derive(seed)]\n"
            "    sink(values)\n"
        )
        taint = reaching_parameters(func)
        labels = taint.labels_of(first_call(func, "sink").args[0])
        assert "param:seed" in labels


class TestPolicyHooks:
    def test_call_labels_inject_source(self):
        func = make_func(
            "def f():\n"
            "    value = source()\n"
            "    sink(value)\n"
        )

        def call_labels(call, args):
            target = call.func
            if isinstance(target, ast.Name) and target.id == "source":
                return frozenset({"tainted"})
            return frozenset()

        taint = run_taint(func, TaintPolicy(call_labels=call_labels))
        assert "tainted" in taint.labels_of(first_call(func, "sink").args[0])

    def test_name_labels_mark_module_constants(self):
        func = make_func(
            "def f():\n"
            "    sink(GLOBAL_SEED)\n"
        )
        policy = TaintPolicy(
            name_labels=lambda name: (
                frozenset({"const"}) if name == "GLOBAL_SEED" else frozenset()
            )
        )
        taint = run_taint(func, policy)
        assert "const" in taint.labels_of(first_call(func, "sink").args[0])

    def test_attribute_labels_see_chain(self):
        func = make_func(
            "def f(spec):\n"
            "    sink(spec.base_seed)\n"
        )

        def attribute_labels(chain, base):
            if chain.endswith("base_seed"):
                return base | {"seedattr"}
            return base

        taint = run_taint(func, TaintPolicy(attribute_labels=attribute_labels))
        assert "seedattr" in taint.labels_of(first_call(func, "sink").args[0])

    def test_stop_propagation_strips_labels(self):
        func = make_func(
            "def f(seed):\n"
            "    n = length(seed)\n"
            "    sink(n)\n"
        )
        policy = TaintPolicy(
            param_labels={"seed": frozenset({"param:seed"})},
            stop_propagation=lambda call: (
                isinstance(call.func, ast.Name) and call.func.id == "length"
            ),
        )
        taint = run_taint(func, policy)
        assert taint.labels_of(first_call(func, "sink").args[0]) == frozenset()
