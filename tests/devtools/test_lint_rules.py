"""Per-rule unit tests: positive hit, clean pass, and noqa suppression.

Each case lints a small fixture snippet written to a temp directory, so
rules are exercised through the real runner (file discovery, parsing,
suppression handling) rather than on hand-built ASTs.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.lint import RULE_REGISTRY, LintConfig, lint_paths
from repro.devtools.lint.core import parse_suppressions


def lint_snippet(tmp_path, source, filename="snippet.py", config=None):
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return lint_paths([tmp_path], config or LintConfig())


def rules_hit(result):
    return sorted({f.rule for f in result.findings})


class TestRegistry:
    def test_seven_rules_registered(self):
        assert sorted(RULE_REGISTRY) == [
            "ANB001",
            "ANB002",
            "ANB003",
            "ANB004",
            "ANB005",
            "ANB006",
            "ANB007",
        ]

    def test_rules_have_docs_and_severities(self):
        for cls in RULE_REGISTRY.values():
            assert cls.doc()
            assert cls.name
            assert cls.severity in ("error", "warning")


class TestSuppressionParsing:
    def test_blanket_and_scoped(self):
        table = parse_suppressions(
            "x = 1  # anb: noqa\n"
            "y = 2  # anb: noqa[ANB001]\n"
            "z = 3  # anb: noqa[ANB001, anb002]\n"
            "w = 4\n"
        )
        assert table[1] is None
        assert table[2] == frozenset({"ANB001"})
        assert table[3] == frozenset({"ANB001", "ANB002"})
        assert 4 not in table


class TestANB001ImportTimeRNG:
    def test_module_level_default_rng_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np
            _RNG = np.random.default_rng(1234)
            """,
        )
        assert rules_hit(result) == ["ANB001"]

    def test_module_level_seed_call_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import random
            random.seed(7)
            """,
        )
        assert "ANB001" in rules_hit(result)

    def test_class_body_is_import_time(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            class Landscape:
                TABLE = np.random.default_rng(3).uniform(size=4)
            """,
        )
        assert "ANB001" in rules_hit(result)

    def test_inside_function_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def tables(seed: int):
                return np.random.default_rng(seed).uniform(size=4)
            """,
        )
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np
            _RNG = np.random.default_rng(1)  # anb: noqa[ANB001]
            """,
        )
        assert result.findings == []


class TestANB002UnseededRNG:
    def test_unseeded_default_rng_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample():
                return np.random.default_rng().uniform()
            """,
        )
        assert rules_hit(result) == ["ANB002"]

    def test_stdlib_global_api_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert rules_hit(result) == ["ANB002"]

    def test_legacy_numpy_global_api_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def noise(n):
                return np.random.randn(n)
            """,
        )
        assert rules_hit(result) == ["ANB002"]

    def test_seeded_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def sample(seed):
                gen = np.random.default_rng(seed)
                return gen.uniform()
            """,
        )
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # anb: noqa[ANB002]
            """,
        )
        assert result.findings == []


class TestANB003FloatEquality:
    def test_eq_against_float_literal_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def check(x):
                return x == 0.1
            """,
        )
        assert rules_hit(result) == ["ANB003"]

    def test_noteq_and_negative_literal_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def check(x):
                return x != -2.5
            """,
        )
        assert rules_hit(result) == ["ANB003"]

    def test_int_and_ordering_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def check(x):
                return x == 1 or x >= 0.5
            """,
        )
        assert result.findings == []

    def test_tolerance_helper_exempt(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def close_enough(x):
                return x == 0.0 or abs(x) < 1e-9
            """,
        )
        assert result.findings == []

    def test_configured_helper_exempt(self, tmp_path):
        config = LintConfig(tolerance_helpers=("my_exact_probe",))
        result = lint_snippet(
            tmp_path,
            """
            def my_exact_probe(x):
                return x == 0.25
            """,
            config=config,
        )
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def check(x):
                return x == 1.0  # anb: noqa[ANB003]
            """,
        )
        assert result.findings == []


class TestANB004MutableDefault:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()", "{1: 2}"]
    )
    def test_mutable_defaults_hit(self, tmp_path, default):
        result = lint_snippet(
            tmp_path,
            f"""
            def f(x, acc={default}):
                return acc
            """,
        )
        assert rules_hit(result) == ["ANB004"]

    def test_kwonly_default_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(*, acc=[]):
                return acc
            """,
        )
        assert rules_hit(result) == ["ANB004"]

    def test_none_and_tuple_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(x=None, y=(), z="s", w=frozenset()):
                return x, y, z, w
            """,
        )
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(acc=[]):  # anb: noqa[ANB004]
                return acc
            """,
        )
        assert result.findings == []


class TestANB005ExportIntegrity:
    def test_undefined_all_entry_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            __all__ = ["present", "missing"]

            def present():
                return 1
            """,
        )
        assert rules_hit(result) == ["ANB005"]
        assert "missing" in result.findings[0].message

    def test_resolving_all_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            from os import path

            CONST = 3

            __all__ = ["CONST", "path", "helper", "Klass"]

            def helper():
                return CONST

            class Klass:
                pass
            """,
        )
        assert result.findings == []

    def test_broken_reexport_hit(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "impl.py").write_text(
            "def real():\n    return 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "__init__.py").write_text(
            "from pkg.impl import real, ghost\n", encoding="utf-8"
        )
        result = lint_paths([tmp_path], LintConfig())
        assert rules_hit(result) == ["ANB005"]
        assert "ghost" in result.findings[0].message

    def test_relative_reexport_and_submodule_clean(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "impl.py").write_text(
            "def real():\n    return 1\n", encoding="utf-8"
        )
        (tmp_path / "pkg" / "__init__.py").write_text(
            "from . import impl\nfrom .impl import real\n"
            '__all__ = ["impl", "real"]\n',
            encoding="utf-8",
        )
        result = lint_paths([tmp_path], LintConfig())
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            __all__ = ["missing"]  # anb: noqa[ANB005]
            """,
        )
        assert result.findings == []


class TestANB006SilentExcept:
    def test_bare_except_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except:
                    return 0
            """,
        )
        assert rules_hit(result) == ["ANB006"]

    def test_pass_only_handler_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except ValueError:
                    pass
            """,
        )
        assert rules_hit(result) == ["ANB006"]

    def test_handled_exception_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(log):
                try:
                    return 1
                except ValueError as exc:
                    log.append(exc)
                    raise
            """,
        )
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except ValueError:  # anb: noqa[ANB006]
                    pass
            """,
        )
        assert result.findings == []


class TestANB007BarePrint:
    def test_bare_print_hit(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(x):
                print("debug:", x)
                return x
            """,
        )
        assert rules_hit(result) == ["ANB007"]
        assert result.findings[0].severity == "warning"

    def test_main_guard_demo_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(x):
                return x

            if __name__ == "__main__":
                print(f(1))
            """,
        )
        assert result.findings == []

    def test_print_allowed_module_exempt(self, tmp_path):
        config = LintConfig(print_allowed=("snippet",))
        result = lint_snippet(
            tmp_path,
            """
            def f(x):
                print(x)
            """,
            config=config,
        )
        assert result.findings == []

    def test_print_allowed_glob(self, tmp_path):
        config = LintConfig(print_allowed=("snip*",))
        result = lint_snippet(
            tmp_path,
            """
            def f(x):
                print(x)
            """,
            config=config,
        )
        assert result.findings == []

    def test_print_allowed_package_prefix_covers_submodules(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("", encoding="utf-8")
        config = LintConfig(print_allowed=("pkg",))
        result = lint_snippet(
            tmp_path,
            """
            def f(x):
                print(x)
            """,
            filename="pkg/tool.py",
            config=config,
        )
        assert result.findings == []

    def test_method_named_print_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(report):
                report.print()
                return report
            """,
        )
        assert result.findings == []

    def test_noqa_suppresses(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def f(x):
                print(x)  # anb: noqa[ANB007]
            """,
        )
        assert result.findings == []


class TestConfigFiltering:
    def test_select_limits_rules(self, tmp_path):
        source = """
        import numpy as np
        _RNG = np.random.default_rng(1)

        def f(acc=[]):
            return acc
        """
        config = LintConfig(select=("ANB004",))
        result = lint_snippet(tmp_path, source, config=config)
        assert rules_hit(result) == ["ANB004"]

    def test_ignore_drops_rules(self, tmp_path):
        source = """
        import numpy as np
        _RNG = np.random.default_rng(1)

        def f(acc=[]):
            return acc
        """
        config = LintConfig(ignore=("ANB001",))
        result = lint_snippet(tmp_path, source, config=config)
        assert rules_hit(result) == ["ANB004"]

    def test_exclude_skips_files(self, tmp_path):
        config = LintConfig(exclude=("generated",))
        (tmp_path / "generated").mkdir()
        (tmp_path / "generated" / "bad.py").write_text(
            "def f(acc=[]):\n    return acc\n", encoding="utf-8"
        )
        result = lint_paths([tmp_path], config)
        assert result.files_checked == 0
        assert result.findings == []

    def test_syntax_error_reported_as_anb000(self, tmp_path):
        result = lint_snippet(tmp_path, "def broken(:\n")
        assert [f.rule for f in result.findings] == ["ANB000"]
        assert result.findings[0].severity == "error"
