"""Shared fixture scaffolding for the whole-program analyzer tests.

The analyzer's default configuration names this repository's own
invariant carriers (``repro.core.parallel.deterministic_map``,
``repro.core.reliability.write_artifact``, ``repro.obs``), so every
fixture tree recreates a miniature ``repro`` package whose module names
match those defaults verbatim — ``module_name_for`` derives names from
the ``__init__.py`` chain, not from the filesystem root.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools.analyze import AnalyzeConfig, analyze_paths

# Minimal stand-ins for the dispatch, artifact, and telemetry surfaces.
SCAFFOLD = {
    "repro/__init__.py": "",
    "repro/core/__init__.py": "",
    "repro/core/parallel.py": """\
        def deterministic_map(fn, items, n_jobs=None):
            return [fn(item) for item in items]


        def chunked_map(fn, items, n_jobs=None):
            return [fn(item) for item in items]
        """,
    "repro/core/reliability.py": """\
        def write_artifact(path, payload):
            return path


        def run_tasks(fn, tasks):
            return [fn(task) for task in tasks]
        """,
    "repro/obs/__init__.py": """\
        def telemetry_active():
            return False


        def metrics():
            return {}


        def get_logger(name):
            return None


        def span(name, **fields):
            return None
        """,
}


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, content in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


def analyze_fixture(
    tmp_path: Path,
    files: dict[str, str],
    config: AnalyzeConfig | None = None,
    scaffold: bool = True,
):
    """Analyze ``files`` (plus the scaffold) and return the result."""
    merged = {**SCAFFOLD, **files} if scaffold else dict(files)
    write_tree(tmp_path, merged)
    if config is None:
        config = AnalyzeConfig(baseline=None)
    return analyze_paths([tmp_path / "repro"], config, display_root=tmp_path)


def findings_by_rule(result, rule: str):
    return [f for f in result.findings if f.rule == rule]
