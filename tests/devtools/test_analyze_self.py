"""Self-gate: the repository's own source must satisfy its own analyzer.

The whole-program counterpart of ``test_lint_self``: if anyone
reintroduces an unlocked shared-state write on a pool path (ANB101), an
unseeded RNG on an artifact path (ANB102), or ungated hot-path telemetry
(ANB103) under ``src/repro``, tier-1 fails.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.devtools.analyze import AnalyzeConfig, analyze_paths, self_test

SRC_ROOT = Path(repro.__file__).resolve().parent


def test_package_tree_is_analysis_clean():
    result = analyze_paths([SRC_ROOT], AnalyzeConfig(baseline=None))
    formatted = "\n".join(
        f"{f.location()}: {f.rule} [{f.symbol}] {f.message}"
        for f in result.findings
    )
    assert result.findings == [], (
        f"analysis violations in src/repro:\n{formatted}"
    )
    # Sanity: the run saw the real program, not an empty directory.
    assert result.stats["modules"] >= 80
    assert result.stats["dispatch_sites"] >= 4
    assert result.stats["workers"] >= 50
    assert result.stats["parse_errors"] == 0


def test_committed_baseline_is_empty():
    """The tree is clean, so the committed ledger must hold zero debt —
    a non-empty baseline would mean a finding was parked, not fixed."""
    import json

    baseline = SRC_ROOT.parent.parent / "analyze-baseline.json"
    assert baseline.is_file(), "committed analyze-baseline.json is missing"
    data = json.loads(baseline.read_text(encoding="utf-8"))
    assert data["entries"] == []


def _shadow(tmp_path: Path, source: str) -> Path:
    shadow = tmp_path / "shadow"
    shadow.mkdir()
    (shadow / "regression.py").write_text(
        textwrap.dedent(source), encoding="utf-8"
    )
    return shadow


def test_gate_catches_reintroduced_shared_state_race(tmp_path):
    shadow = _shadow(
        tmp_path,
        """
        from repro.core.parallel import deterministic_map

        SHARED = {}

        def racy_worker(item):
            SHARED[item] = item
            return item

        def run(items):
            return deterministic_map(racy_worker, items)
        """,
    )
    result = analyze_paths([SRC_ROOT, shadow], AnalyzeConfig(baseline=None))
    assert any(
        f.rule == "ANB101" and f.path.endswith("regression.py")
        for f in result.findings
    )


def test_gate_catches_reintroduced_unseeded_rng(tmp_path):
    shadow = _shadow(
        tmp_path,
        """
        import random

        from repro.core.reliability import write_artifact

        def leak(path):
            rng = random.Random()
            write_artifact(path, {"x": rng.random()})
        """,
    )
    result = analyze_paths([SRC_ROOT, shadow], AnalyzeConfig(baseline=None))
    assert any(
        f.rule == "ANB102" and f.path.endswith("regression.py")
        for f in result.findings
    )


def test_gate_catches_reintroduced_ungated_telemetry(tmp_path):
    shadow = _shadow(
        tmp_path,
        """
        import repro.obs as obs
        from repro.core.parallel import deterministic_map

        def chatty_worker(item):
            obs.metrics().inc("chatty")
            return item

        def run(items):
            return deterministic_map(chatty_worker, items)
        """,
    )
    result = analyze_paths([SRC_ROOT, shadow], AnalyzeConfig(baseline=None))
    assert any(
        f.rule == "ANB103" and f.path.endswith("regression.py")
        for f in result.findings
    )


def test_builtin_self_test_passes():
    assert self_test() == 0
