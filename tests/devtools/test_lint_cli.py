"""CLI coverage for ``python -m repro.cli lint`` and the lint runner."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.devtools.lint import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS
from repro.devtools.lint.runner import main as lint_main


@pytest.fixture
def violation_file(tmp_path):
    path = tmp_path / "planted.py"
    path.write_text(
        textwrap.dedent(
            """
            import numpy as np

            _RNG = np.random.default_rng(99)

            def f(acc=[]):
                return acc
            """
        ),
        encoding="utf-8",
    )
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(
        "def double(x):\n    return 2 * x\n", encoding="utf-8"
    )
    return path


class TestCliLint:
    def test_clean_file_exits_zero_text(self, clean_file, capsys):
        code = cli_main(["lint", str(clean_file)])
        assert code == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "ok: no findings" in out

    def test_violations_exit_nonzero_text(self, violation_file, capsys):
        code = cli_main(["lint", str(violation_file)])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "ANB001" in out and "ANB004" in out
        assert "planted.py" in out

    def test_json_format(self, violation_file, capsys):
        code = cli_main(["lint", str(violation_file), "--format", "json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert {"ANB001", "ANB004"} <= rules
        assert payload["counts"]["ANB001"] == 1
        # Rule metadata rides along so consumers can render docs.
        assert payload["rules"]["ANB002"]["name"] == "unseeded-rng"

    def test_select_restricts_rules(self, violation_file, capsys):
        code = cli_main(["lint", str(violation_file), "--select", "anb004"])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "ANB004" in out and "ANB001" not in out

    def test_unknown_rule_id_exits_two(self, violation_file, capsys):
        """A typo'd --select must not silently disable the linter."""
        code = cli_main(["lint", str(violation_file), "--select", "ANB999"])
        assert code == EXIT_ERROR
        err = capsys.readouterr().err
        assert "ANB999" in err and "known:" in err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        code = cli_main(["lint", str(tmp_path / "nope")])
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_src_repro_is_clean_via_cli(self, capsys):
        assert cli_main(["lint", "src/repro"]) == EXIT_CLEAN


class TestModuleEntryPoint:
    def test_runner_main_matches_cli(self, violation_file, capsys):
        assert lint_main([str(violation_file)]) == EXIT_FINDINGS

    def test_pyproject_config_respected(self, tmp_path, violation_file, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.repro.lint]\nignore = ["ANB001", "ANB004"]\n',
            encoding="utf-8",
        )
        code = lint_main([str(violation_file), "--config", str(pyproject)])
        assert code == EXIT_CLEAN

    def test_broken_config_exits_two(self, tmp_path, violation_file, capsys):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.lint]\nunknown-key = 3\n", encoding="utf-8"
        )
        code = lint_main([str(violation_file), "--config", str(pyproject)])
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err
