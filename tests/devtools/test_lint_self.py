"""Self-gate: the repository's own source must satisfy its own linter.

This is the enforcement point for the determinism invariants: if anyone
reintroduces module-level RNG state (ANB001), unseeded draws (ANB002), or
any other rule violation under ``src/repro``, tier-1 fails.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import repro
from repro.devtools.lint import lint_paths

SRC_ROOT = Path(repro.__file__).resolve().parent


def test_package_tree_is_lint_clean():
    result = lint_paths([SRC_ROOT])
    formatted = "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in result.findings
    )
    assert result.findings == [], f"lint violations in src/repro:\n{formatted}"
    # Sanity: the run actually covered the package, not an empty directory.
    assert result.files_checked >= 80


def test_gate_catches_reintroduced_module_level_rng(tmp_path):
    """The self-gate would fail if import-time RNG came back anywhere."""
    shadow = tmp_path / "shadow"
    shadow.mkdir()
    (shadow / "regression.py").write_text(
        textwrap.dedent(
            """
            import numpy as np

            _TABLE = np.random.default_rng(20240623).uniform(size=6)
            """
        ),
        encoding="utf-8",
    )
    result = lint_paths([SRC_ROOT, shadow])
    assert any(
        f.rule == "ANB001" and f.path.endswith("regression.py")
        for f in result.findings
    )
