"""Baseline ledger round-trips: suppression, expiry, staleness, rewrite."""

from __future__ import annotations

import datetime as dt
import json

import pytest

from repro.devtools.analyze import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.analyze.core import AnalysisFinding

TODAY = dt.date(2026, 8, 8)


def finding(rule="ANB101", path="repro/a.py", symbol="repro.a.f", line=3):
    return AnalysisFinding(
        path=path,
        line=line,
        col=0,
        rule=rule,
        severity="error",
        symbol=symbol,
        message="fixture finding",
    )


class TestLoad:
    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_round_trip_preserves_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        written = write_baseline(path, [finding(), finding(rule="ANB103")])
        assert load_baseline(path) == written

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError):
            load_baseline(path)

    def test_entry_missing_keys_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [{"rule": "ANB101"}]})
        )
        with pytest.raises(BaselineError):
            load_baseline(path)


class TestApply:
    def test_matching_entry_suppresses(self):
        entries = [
            BaselineEntry(rule="ANB101", path="repro/a.py", symbol="repro.a.f")
        ]
        result = apply_baseline([finding()], entries, today=TODAY)
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.stale == []

    def test_match_survives_line_drift(self):
        entries = [
            BaselineEntry(rule="ANB101", path="repro/a.py", symbol="repro.a.f")
        ]
        result = apply_baseline([finding(line=400)], entries, today=TODAY)
        assert result.findings == []

    def test_unmatched_finding_stays_live(self):
        entries = [
            BaselineEntry(rule="ANB101", path="repro/a.py", symbol="repro.a.f")
        ]
        result = apply_baseline(
            [finding(symbol="repro.a.other")], entries, today=TODAY
        )
        assert len(result.findings) == 1
        # The entry matched nothing: stale.
        assert len(result.stale) == 1

    def test_expired_entry_resurfaces_finding(self):
        entries = [
            BaselineEntry(
                rule="ANB101",
                path="repro/a.py",
                symbol="repro.a.f",
                expires="2026-01-01",
            )
        ]
        result = apply_baseline([finding()], entries, today=TODAY)
        assert len(result.findings) == 1
        assert len(result.expired) == 1

    def test_unexpired_entry_still_suppresses(self):
        entries = [
            BaselineEntry(
                rule="ANB101",
                path="repro/a.py",
                symbol="repro.a.f",
                expires="2027-01-01",
            )
        ]
        result = apply_baseline([finding()], entries, today=TODAY)
        assert result.findings == []
        assert result.expired == []

    def test_bad_expiry_date_raises(self):
        entries = [
            BaselineEntry(
                rule="ANB101",
                path="repro/a.py",
                symbol="repro.a.f",
                expires="not-a-date",
            )
        ]
        with pytest.raises(BaselineError):
            apply_baseline([finding()], entries, today=TODAY)


class TestWrite:
    def test_update_keeps_prior_reason_and_expiry(self, tmp_path):
        path = tmp_path / "baseline.json"
        prior = [
            BaselineEntry(
                rule="ANB101",
                path="repro/a.py",
                symbol="repro.a.f",
                reason="known flaky cache",
                expires="2027-06-01",
            )
        ]
        entries = write_baseline(path, [finding()], previous=prior)
        assert entries[0].reason == "known flaky cache"
        assert entries[0].expires == "2027-06-01"

    def test_update_drops_fixed_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        prior = [
            BaselineEntry(
                rule="ANB103", path="repro/gone.py", symbol="repro.gone.f"
            )
        ]
        entries = write_baseline(path, [finding()], previous=prior)
        assert [e.rule for e in entries] == ["ANB101"]

    def test_duplicate_findings_collapse_to_one_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        entries = write_baseline(path, [finding(line=3), finding(line=9)])
        assert len(entries) == 1
