"""Positive and negative fixtures for each analysis family.

Every bad fixture has a clean twin exercising the same shape with the
invariant honoured, pinning both the detection and the precision side of
each rule.
"""

from __future__ import annotations

from tests.devtools.analyze_helpers import analyze_fixture, findings_by_rule


class TestRaceDetector:
    def test_global_subscript_write_in_worker_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro.core.parallel import deterministic_map

                    RESULTS = {}

                    def worker(item):
                        RESULTS[item] = item * 2
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB101")
        assert len(hits) == 1
        assert hits[0].symbol == "repro.pipeline.worker"
        assert "RESULTS" in hits[0].message

    def test_mutating_method_on_global_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro.core.parallel import chunked_map

                    LOG = []

                    def worker(item):
                        LOG.append(item)
                        return item

                    def run(items):
                        return chunked_map(worker, items)
                    """,
            },
        )
        assert len(findings_by_rule(result, "ANB101")) == 1

    def test_nonlocal_shared_with_dispatcher_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro.core.parallel import deterministic_map

                    def run(items):
                        total = 0

                        def worker(item):
                            nonlocal total
                            total += item
                            return item

                        return deterministic_map(worker, items), total
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB101")
        assert len(hits) == 1
        assert "total" in hits[0].message

    def test_lock_guarded_write_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    import threading
                    from repro.core.parallel import deterministic_map

                    CACHE = {}
                    CACHE_LOCK = threading.Lock()

                    def worker(item):
                        with CACHE_LOCK:
                            CACHE[item] = item
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB101") == []

    def test_unimaginatively_named_lock_binding_clean(self, tmp_path):
        # The guard is recognised by its threading.Lock() construction,
        # not only by a name containing "lock".
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    import threading
                    from repro.core.parallel import deterministic_map

                    CACHE = {}
                    GUARD = threading.Lock()

                    def worker(item):
                        with GUARD:
                            CACHE[item] = item
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB101") == []

    def test_local_state_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro.core.parallel import deterministic_map

                    def worker(item):
                        acc = {}
                        acc[item] = item
                        acc_list = []
                        acc_list.append(item)
                        return acc

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB101") == []

    def test_per_task_closure_state_clean(self, tmp_path):
        # The frame owning ``nodes`` is itself a worker task, so its
        # closure state is thread-local (the tree-grower pattern).
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro.core.parallel import deterministic_map

                    def build_one(spec):
                        nodes = []

                        def push(node):
                            nodes.append(node)

                        push(spec)
                        return nodes

                    def run(specs):
                        return deterministic_map(build_one, specs)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB101") == []

    def test_functions_outside_worker_set_not_checked(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/setup.py": """\
                    REGISTRY = {}

                    def register(name, value):
                        REGISTRY[name] = value
                    """,
            },
        )
        assert findings_by_rule(result, "ANB101") == []


class TestSeedFlow:
    def test_unseeded_rng_on_artifact_path_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    import random
                    from repro.core.reliability import write_artifact

                    def build(path):
                        rng = random.Random()
                        write_artifact(path, {"x": rng.random()})
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB102")
        assert len(hits) == 1
        assert "unseeded" in hits[0].message

    def test_non_seed_derived_value_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    import random
                    import time
                    from repro.core.reliability import write_artifact

                    def build(path):
                        rng = random.Random(time.time())
                        write_artifact(path, {"x": rng.random()})
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB102")
        assert len(hits) == 1
        assert "not derived" in hits[0].message

    def test_seed_parameter_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    import random
                    from repro.core.reliability import write_artifact

                    def build(path, seed):
                        rng = random.Random(seed * 31 + 7)
                        write_artifact(path, {"x": rng.random()})
                    """,
            },
        )
        assert findings_by_rule(result, "ANB102") == []

    def test_hash_derivation_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    import random
                    from repro.core.reliability import write_artifact

                    def stable_hash(key):
                        return sum(ord(c) for c in key)

                    def build(path, key):
                        rng = random.Random(stable_hash(key))
                        write_artifact(path, {"x": rng.random()})
                    """,
            },
        )
        assert findings_by_rule(result, "ANB102") == []

    def test_module_constant_seed_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    import random
                    from repro.core.reliability import write_artifact

                    BASE_SEED = 20240623

                    def build(path):
                        rng = random.Random(BASE_SEED)
                        write_artifact(path, {"x": rng.random()})
                    """,
            },
        )
        assert findings_by_rule(result, "ANB102") == []

    def test_seed_attribute_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    import random
                    from repro.core.reliability import write_artifact

                    def build(path, spec):
                        rng = random.Random(spec.base_seed)
                        write_artifact(path, {"x": rng.random()})
                    """,
            },
        )
        assert findings_by_rule(result, "ANB102") == []

    def test_rng_off_artifact_path_ignored(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/demo.py": """\
                    import random

                    def shuffle_demo(items):
                        rng = random.Random()
                        rng.shuffle(items)
                        return items
                    """,
            },
        )
        assert findings_by_rule(result, "ANB102") == []

    def test_default_rng_without_random_prefix_detected(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    from numpy.random import default_rng
                    from repro.core.reliability import write_artifact

                    def build(path):
                        rng = default_rng()
                        write_artifact(path, {"x": float(rng.random())})
                    """,
            },
        )
        assert len(findings_by_rule(result, "ANB102")) == 1

    def test_project_class_named_random_not_confused(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    from repro.core.reliability import write_artifact

                    class Random:
                        def value(self):
                            return 4

                    def build(path):
                        gen = Random()
                        write_artifact(path, {"x": gen.value()})
                    """,
            },
        )
        assert findings_by_rule(result, "ANB102") == []


class TestTelemetryPurity:
    def test_ungated_obs_call_in_worker_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro import obs
                    from repro.core.parallel import deterministic_map

                    def worker(item):
                        obs.metrics()
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB103")
        assert len(hits) == 1
        assert "not guarded" in hits[0].message

    def test_lexically_gated_obs_call_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro import obs
                    from repro.core.parallel import deterministic_map

                    def worker(item):
                        if obs.telemetry_active():
                            obs.metrics()
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB103") == []

    def test_rebound_gate_variable_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro import obs
                    from repro.core.parallel import deterministic_map

                    def worker(item):
                        active = obs.telemetry_active()
                        if active:
                            obs.metrics()
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB103") == []

    def test_early_exit_gate_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro import obs
                    from repro.core.parallel import deterministic_map

                    def record(item):
                        if not obs.telemetry_active():
                            return
                        obs.metrics()

                    def worker(item):
                        if obs.telemetry_active():
                            record(item)
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB103") == []

    def test_exempt_obs_api_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro import obs
                    from repro.core.parallel import deterministic_map

                    def worker(item):
                        with obs.span("worker", item=item):
                            return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB103") == []

    def test_caller_gated_helper_clean(self, tmp_path):
        # ``emit`` itself has no gate, but its only call site is gated —
        # the fixpoint clears it.
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro import obs
                    from repro.core.parallel import deterministic_map

                    def emit(item):
                        obs.metrics()

                    def worker(item):
                        if obs.telemetry_active():
                            emit(item)
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB103") == []

    def test_obs_value_into_artifact_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    from repro import obs
                    from repro.core.reliability import write_artifact

                    def build(path):
                        snapshot = obs.metrics()
                        write_artifact(path, {"telemetry": snapshot})
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB103")
        assert len(hits) == 1
        assert "artifact" in hits[0].message

    def test_obs_value_into_query_result_flagged(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/bench.py": """\
                    from repro import obs

                    def query_stats():
                        return obs.metrics()
                    """,
            },
        )
        hits = findings_by_rule(result, "ANB103")
        assert len(hits) == 1
        assert "query" in hits[0].message

    def test_clean_artifact_payload_clean(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/build.py": """\
                    from repro import obs
                    from repro.core.reliability import write_artifact

                    def build(path, rows):
                        if obs.telemetry_active():
                            obs.metrics()
                        write_artifact(path, {"rows": rows})
                    """,
            },
        )
        assert findings_by_rule(result, "ANB103") == []


class TestSuppression:
    def test_inline_noqa_suppresses_analysis_finding(self, tmp_path):
        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    from repro.core.parallel import deterministic_map

                    RESULTS = {}

                    def worker(item):
                        RESULTS[item] = item  # anb: noqa[ANB101]
                        return item

                    def run(items):
                        return deterministic_map(worker, items)
                    """,
            },
        )
        assert findings_by_rule(result, "ANB101") == []

    def test_select_restricts_rule_families(self, tmp_path):
        from repro.devtools.analyze import AnalyzeConfig

        result = analyze_fixture(
            tmp_path,
            {
                "repro/pipeline.py": """\
                    import random
                    from repro import obs
                    from repro.core.parallel import deterministic_map
                    from repro.core.reliability import write_artifact

                    RESULTS = {}

                    def worker(item):
                        RESULTS[item] = item
                        obs.metrics()
                        return item

                    def run(items, path):
                        rows = deterministic_map(worker, items)
                        rng = random.Random()
                        write_artifact(path, {"rows": rows, "x": rng.random()})
                    """,
            },
            config=AnalyzeConfig(baseline=None, select=("ANB102",)),
        )
        rules = {f.rule for f in result.findings}
        assert rules == {"ANB102"}
