"""Unit tests for the ConfigSpace substitute."""

import numpy as np
import pytest

from repro.hpo.configspace import (
    CategoricalParam,
    ConfigSpace,
    FloatParam,
    IntParam,
)


@pytest.fixture
def space():
    return ConfigSpace(
        [
            FloatParam("lr", 1e-4, 1e-1, log=True),
            IntParam("depth", 2, 10),
            CategoricalParam("kernel", ("rbf", "linear")),
        ]
    )


class TestParams:
    def test_float_bounds_validated(self):
        with pytest.raises(ValueError):
            FloatParam("x", 1.0, 1.0)
        with pytest.raises(ValueError):
            FloatParam("x", 0.0, 1.0, log=True)

    def test_int_bounds_validated(self):
        with pytest.raises(ValueError):
            IntParam("x", 5, 5)

    def test_categorical_needs_choices(self):
        with pytest.raises(ValueError):
            CategoricalParam("x", ())

    def test_float_sampling_within_bounds(self):
        rng = np.random.default_rng(0)
        p = FloatParam("x", 0.1, 10.0, log=True)
        samples = [p.sample(rng) for _ in range(200)]
        assert all(0.1 <= s <= 10.0 for s in samples)

    def test_log_sampling_covers_decades(self):
        rng = np.random.default_rng(1)
        p = FloatParam("x", 1e-4, 1.0, log=True)
        samples = np.array([p.sample(rng) for _ in range(500)])
        assert (samples < 1e-2).mean() > 0.3  # log-uniform, not uniform

    def test_int_sampling_inclusive(self):
        rng = np.random.default_rng(2)
        p = IntParam("x", 1, 3)
        values = {p.sample(rng) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_to_unit_endpoints(self):
        p = FloatParam("x", 2.0, 4.0)
        assert p.to_unit(2.0) == 0.0
        assert p.to_unit(4.0) == 1.0
        c = CategoricalParam("k", ("a", "b", "c"))
        assert c.to_unit("a") == 0.0
        assert c.to_unit("c") == 1.0


class TestConfigSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([IntParam("x", 0, 1), FloatParam("x", 0.0, 1.0)])

    def test_sample_members_validate(self, space):
        rng = np.random.default_rng(3)
        for _ in range(50):
            space.validate(space.sample(rng))

    def test_validate_rejects_missing_key(self, space):
        with pytest.raises(ValueError):
            space.validate({"lr": 0.01, "depth": 5})

    def test_validate_rejects_out_of_range(self, space):
        with pytest.raises(ValueError):
            space.validate({"lr": 10.0, "depth": 5, "kernel": "rbf"})

    def test_validate_rejects_bad_choice(self, space):
        with pytest.raises(ValueError):
            space.validate({"lr": 0.01, "depth": 5, "kernel": "poly"})

    def test_to_vector_in_unit_cube(self, space):
        rng = np.random.default_rng(4)
        for _ in range(20):
            v = space.to_vector(space.sample(rng))
            assert v.shape == (3,)
            assert np.all(v >= 0) and np.all(v <= 1)

    def test_to_matrix(self, space):
        rng = np.random.default_rng(5)
        configs = [space.sample(rng) for _ in range(7)]
        M = space.to_matrix(configs)
        assert M.shape == (7, 3)
        assert space.to_matrix([]).shape == (0, 3)

    def test_names_ordered(self, space):
        assert space.names() == ["lr", "depth", "kernel"]
