"""Unit tests for random-search and SMAC-lite HPO."""

import numpy as np
import pytest

from repro.hpo.configspace import ConfigSpace, FloatParam
from repro.hpo.random_search import RandomSearchOptimizer
from repro.hpo.smac import SmacOptimizer, expected_improvement


@pytest.fixture
def quadratic_space():
    return ConfigSpace([FloatParam("x", -5.0, 5.0), FloatParam("y", -5.0, 5.0)])


def quadratic(config):
    return (config["x"] - 1.0) ** 2 + (config["y"] + 2.0) ** 2


class TestRandomSearch:
    def test_budget_respected(self, quadratic_space):
        result = RandomSearchOptimizer(quadratic_space, seed=0).optimize(quadratic, 25)
        assert result.num_evaluations == 25

    def test_best_is_minimum_of_history(self, quadratic_space):
        result = RandomSearchOptimizer(quadratic_space, seed=0).optimize(quadratic, 25)
        assert result.best_loss == min(l for _, l in result.history)
        assert quadratic(result.best_config) == result.best_loss

    def test_budget_validated(self, quadratic_space):
        with pytest.raises(ValueError):
            RandomSearchOptimizer(quadratic_space).optimize(quadratic, 0)

    def test_deterministic(self, quadratic_space):
        a = RandomSearchOptimizer(quadratic_space, seed=7).optimize(quadratic, 10)
        b = RandomSearchOptimizer(quadratic_space, seed=7).optimize(quadratic, 10)
        assert a.best_config == b.best_config


class TestExpectedImprovement:
    def test_zero_std_no_improvement(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.0]), best=0.5)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_better_mean_higher_ei(self):
        ei = expected_improvement(
            np.array([0.0, 1.0]), np.array([0.5, 0.5]), best=1.0
        )
        assert ei[0] > ei[1]

    def test_uncertainty_adds_ei_at_equal_mean(self):
        ei = expected_improvement(
            np.array([1.0, 1.0]), np.array([0.01, 1.0]), best=1.0
        )
        assert ei[1] > ei[0]


class TestSmac:
    def test_finds_near_optimum(self, quadratic_space):
        result = SmacOptimizer(quadratic_space, seed=0, n_init=6).optimize(
            quadratic, budget=40
        )
        assert result.best_loss < 1.0  # optimum is 0 at (1, -2)

    def test_beats_or_matches_random_search(self, quadratic_space):
        # Both optimizers are stochastic and either can blow up on a single
        # seed, so compare medians over a handful of seeds rather than the
        # mean of a few — the mean is dominated by rare bad runs.
        budget = 35
        smac_losses = []
        rs_losses = []
        for seed in range(5):
            smac_losses.append(
                SmacOptimizer(quadratic_space, seed=seed, n_init=6)
                .optimize(quadratic, budget)
                .best_loss
            )
            rs_losses.append(
                RandomSearchOptimizer(quadratic_space, seed=seed)
                .optimize(quadratic, budget)
                .best_loss
            )
        assert np.median(smac_losses) <= np.median(rs_losses) * 1.2

    def test_budget_respected(self, quadratic_space):
        result = SmacOptimizer(quadratic_space, seed=0, n_init=4).optimize(
            quadratic, budget=12
        )
        assert result.num_evaluations == 12

    def test_budget_smaller_than_init(self, quadratic_space):
        result = SmacOptimizer(quadratic_space, seed=0, n_init=8).optimize(
            quadratic, budget=3
        )
        assert result.num_evaluations == 3

    def test_n_init_validated(self, quadratic_space):
        with pytest.raises(ValueError):
            SmacOptimizer(quadratic_space, n_init=1)

    def test_budget_validated(self, quadratic_space):
        with pytest.raises(ValueError):
            SmacOptimizer(quadratic_space).optimize(quadratic, 0)
