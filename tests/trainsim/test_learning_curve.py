"""Unit tests for the convergence / rank-noise model."""

from repro.trainsim.learning_curve import (
    batch_factor,
    converged_fraction,
    epoch_factor,
    epoch_time_constant,
    interaction,
    interaction_amplitude,
    res_factor,
    resolution_sensitivity,
    seed_noise_std,
)
from repro.trainsim.schemes import P_STAR, REFERENCE_SCHEME, TrainingScheme


def _scheme(epochs=80, res_end=224, batch=256):
    return TrainingScheme(batch, epochs, 0, 0, res_end, res_end)


class TestEpochFactor:
    def test_monotone_in_epochs(self, tiny_arch):
        factors = [epoch_factor(tiny_arch, _scheme(epochs=e)) for e in (10, 30, 80, 300)]
        assert factors == sorted(factors)
        assert all(0 < f <= 1 for f in factors)

    def test_reference_nearly_converged(self, some_archs):
        for arch in some_archs[:5]:
            assert epoch_factor(arch, REFERENCE_SCHEME) > 0.99

    def test_bigger_models_converge_slower(self, tiny_arch, big_arch):
        assert epoch_time_constant(big_arch) > epoch_time_constant(tiny_arch)
        short = _scheme(epochs=20)
        assert epoch_factor(big_arch, short) < epoch_factor(tiny_arch, short)


class TestResolutionFactor:
    def test_full_resolution_no_penalty(self, tiny_arch):
        assert res_factor(tiny_arch, _scheme(res_end=224)) == 1.0

    def test_low_resolution_penalised(self, tiny_arch):
        assert res_factor(tiny_arch, _scheme(res_end=192)) < 1.0
        assert res_factor(tiny_arch, _scheme(res_end=192)) > res_factor(
            tiny_arch, _scheme(res_end=96)
        )

    def test_large_kernels_more_sensitive(self, tiny_arch, big_arch):
        assert resolution_sensitivity(big_arch) > resolution_sensitivity(tiny_arch)


class TestBatchFactor:
    def test_reference_batch_is_optimal(self):
        assert batch_factor(_scheme(batch=256)) == 1.0
        assert batch_factor(_scheme(batch=1024)) < 1.0
        assert batch_factor(_scheme(batch=64)) < 1.0

    def test_penalty_symmetric_in_log2(self):
        assert batch_factor(_scheme(batch=512)) == batch_factor(_scheme(batch=128))


class TestInteraction:
    def test_deterministic(self, some_archs):
        for arch in some_archs[:5]:
            assert interaction(arch, P_STAR) == interaction(arch, P_STAR)

    def test_amplitude_decreases_with_epochs(self):
        amps = [interaction_amplitude(_scheme(epochs=e)) for e in (15, 30, 80, 300)]
        assert amps == sorted(amps, reverse=True)

    def test_low_final_resolution_adds_noise(self):
        assert interaction_amplitude(_scheme(res_end=160)) > interaction_amplitude(
            _scheme(res_end=224)
        )

    def test_scheme_specific(self, some_archs):
        arch = some_archs[0]
        assert interaction(arch, _scheme(epochs=30)) != interaction(
            arch, _scheme(epochs=31)
        )


class TestSeedNoise:
    def test_decreases_with_epochs(self):
        assert seed_noise_std(_scheme(epochs=15)) > seed_noise_std(_scheme(epochs=300))

    def test_positive(self):
        assert seed_noise_std(REFERENCE_SCHEME) > 0


class TestConvergedFraction:
    def test_bounded(self, some_archs):
        for arch in some_archs[:5]:
            for scheme in (REFERENCE_SCHEME, P_STAR, _scheme(epochs=15, res_end=192)):
                f = converged_fraction(arch, scheme)
                assert 0.5 < f <= 1.0

    def test_reference_dominates_proxies(self, some_archs):
        for arch in some_archs[:5]:
            assert converged_fraction(arch, REFERENCE_SCHEME) > converged_fraction(
                arch, P_STAR
            )
