"""Unit tests for the simulated trainer and cost model."""

import numpy as np
import pytest

from repro.trainsim.cost_model import TrainingCostModel
from repro.trainsim.schemes import P_STAR, REFERENCE_SCHEME, TrainingScheme
from repro.trainsim.trainer import SimulatedTrainer


class TestDeterminism:
    def test_same_triple_same_result(self, trainer, some_archs):
        arch = some_archs[0]
        a = trainer.train(arch, P_STAR, seed=3)
        b = trainer.train(arch, P_STAR, seed=3)
        assert a.top1 == b.top1
        assert a.train_hours == b.train_hours

    def test_different_seeds_differ(self, trainer, some_archs):
        arch = some_archs[0]
        accs = {trainer.train(arch, P_STAR, seed=s).top1 for s in range(5)}
        assert len(accs) == 5

    def test_seed_variation_is_small(self, trainer, some_archs):
        arch = some_archs[0]
        accs = [trainer.train(arch, P_STAR, seed=s).top1 for s in range(8)]
        assert np.std(accs) < 0.01


class TestAccuracySemantics:
    def test_bounded(self, trainer, some_archs):
        for arch in some_archs[:10]:
            assert 0.0 <= trainer.train(arch, P_STAR).top1 <= 1.0

    def test_reference_beats_proxy_on_average(self, trainer, some_archs):
        diffs = []
        for arch in some_archs[:15]:
            ref = trainer.expected_top1(arch, REFERENCE_SCHEME)
            prox = trainer.expected_top1(arch, P_STAR)
            diffs.append(ref - prox)
        assert np.mean(diffs) > 0

    def test_expected_equals_mean_over_seeds(self, trainer, some_archs):
        arch = some_archs[0]
        expected = trainer.expected_top1(arch, P_STAR)
        empirical = np.mean(
            [trainer.train(arch, P_STAR, seed=s).top1 for s in range(64)]
        )
        assert abs(expected - empirical) < 1.5e-3

    def test_train_mean_protocol(self, trainer, some_archs):
        arch = some_archs[0]
        mu, sd, hours = trainer.train_mean(arch, P_STAR, seeds=(0, 1, 2))
        singles = [trainer.train(arch, P_STAR, s).top1 for s in (0, 1, 2)]
        assert mu == pytest.approx(np.mean(singles))
        assert sd == pytest.approx(np.std(singles, ddof=1))
        assert hours > 0

    def test_train_mean_requires_seeds(self, trainer, some_archs):
        with pytest.raises(ValueError):
            trainer.train_mean(some_archs[0], P_STAR, seeds=())


class TestCostModel:
    def test_hours_positive_and_monotone_in_epochs(self, some_archs):
        model = TrainingCostModel()
        arch = some_archs[0]
        short = TrainingScheme(256, 20, 0, 0, 224, 224)
        long = TrainingScheme(256, 100, 0, 0, 224, 224)
        assert 0 < model.train_time_hours(arch, short) < model.train_time_hours(arch, long)

    def test_lower_resolution_is_cheaper(self, some_archs):
        model = TrainingCostModel()
        arch = some_archs[0]
        lo = TrainingScheme(256, 50, 0, 0, 128, 128)
        hi = TrainingScheme(256, 50, 0, 0, 224, 224)
        assert model.train_time_hours(arch, lo) < model.train_time_hours(arch, hi)

    def test_larger_batch_is_faster(self, some_archs):
        model = TrainingCostModel()
        assert model.effective_rate(1024) > model.effective_rate(128)

    def test_speedup_over_reference(self, some_archs):
        model = TrainingCostModel()
        speedup = model.speedup_over(some_archs[0], P_STAR, REFERENCE_SCHEME)
        assert speedup > 3.0

    def test_reference_cost_matches_paper_scale(self, some_archs):
        # The paper's 5.2k models cost 17k GPU-h with p* (~3.3 h each) and the
        # reference is ~5.6x that; our simulated costs must be in that regime.
        model = TrainingCostModel()
        hours = [model.train_time_hours(a, REFERENCE_SCHEME) for a in some_archs[:10]]
        assert 5 < np.mean(hours) < 40

    def test_bigger_model_costs_more(self, tiny_arch, big_arch):
        model = TrainingCostModel()
        assert model.train_time_hours(big_arch, P_STAR) > model.train_time_hours(
            tiny_arch, P_STAR
        )


class TestFaultInjection:
    def test_crash_fault_raises(self, some_archs):
        from repro.core.reliability import FaultPlan, InjectedCrash

        arch = some_archs[0]
        trainer = SimulatedTrainer(
            fault_plan=FaultPlan.crash_on([arch.to_string()])
        )
        with pytest.raises(InjectedCrash):
            trainer.train(arch, P_STAR)
        # Other architectures train normally under the same plan.
        assert 0.0 <= trainer.train(some_archs[1], P_STAR).top1 <= 1.0

    def test_nan_fault_corrupts_value(self, some_archs):
        from repro.core.reliability import FaultPlan, FaultSpec

        arch = some_archs[0]
        trainer = SimulatedTrainer(
            fault_plan=FaultPlan([FaultSpec("nan", keys=[arch.to_string()])])
        )
        assert np.isnan(trainer.train(arch, P_STAR).top1)

    def test_attempt_does_not_change_clean_value(self, trainer, some_archs):
        """The retry attempt index must never perturb a healthy result."""
        arch = some_archs[0]
        assert (
            trainer.train(arch, P_STAR, attempt=0).top1
            == trainer.train(arch, P_STAR, attempt=3).top1
        )

    def test_transient_fault_window(self, some_archs):
        from repro.core.reliability import FaultPlan, FaultSpec, MeasurementTimeout

        arch = some_archs[0]
        trainer = SimulatedTrainer(
            fault_plan=FaultPlan([FaultSpec("timeout", max_attempt=1)])
        )
        with pytest.raises(MeasurementTimeout):
            trainer.train(arch, P_STAR, attempt=0)
        clean = SimulatedTrainer().train(arch, P_STAR).top1
        assert trainer.train(arch, P_STAR, attempt=1).top1 == clean
