"""Unit tests for the dataset registry and dataset-aware training."""

import numpy as np
import pytest

from repro.core.metrics import kendall_tau
from repro.trainsim.accuracy_model import asymptotic_accuracy
from repro.trainsim.datasets import (
    DATASETS,
    DatasetSpec,
    IMAGENET,
    IMAGENET100,
    get_dataset,
)
from repro.trainsim.schemes import P_STAR
from repro.trainsim.trainer import SimulatedTrainer


class TestRegistry:
    def test_known_datasets(self):
        assert set(DATASETS) == {"imagenet", "imagenet100"}
        assert get_dataset("imagenet") is IMAGENET

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            get_dataset("cifar10")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            DatasetSpec("x", 1, 100)
        with pytest.raises(ValueError):
            DatasetSpec("x", 10, 0)
        with pytest.raises(ValueError):
            DatasetSpec("x", 10, 100, capacity_sensitivity=0.0)


class TestDatasetAccuracy:
    def test_imagenet_default_is_unchanged(self, some_archs):
        for arch in some_archs[:5]:
            assert asymptotic_accuracy(arch) == asymptotic_accuracy(arch, IMAGENET)

    def test_easier_dataset_sits_higher(self, some_archs):
        diffs = [
            asymptotic_accuracy(a, IMAGENET100) - asymptotic_accuracy(a, IMAGENET)
            for a in some_archs[:20]
        ]
        assert np.mean(diffs) > 0.03

    def test_cross_dataset_rankings_correlate_but_differ(self, some_archs):
        imagenet = [asymptotic_accuracy(a) for a in some_archs]
        small = [asymptotic_accuracy(a, IMAGENET100) for a in some_archs]
        tau = kendall_tau(imagenet, small)
        assert 0.5 < tau < 0.999


class TestDatasetTrainer:
    def test_trainer_binds_dataset(self, some_archs):
        trainer = SimulatedTrainer(dataset=IMAGENET100)
        result = trainer.train(some_archs[0], P_STAR, seed=0)
        assert result.top1 > SimulatedTrainer().train(some_archs[0], P_STAR, 0).top1

    def test_smaller_dataset_trains_faster(self, some_archs):
        big = SimulatedTrainer()
        small = SimulatedTrainer(dataset=IMAGENET100)
        assert small.cost_model.train_time_hours(
            some_archs[0], P_STAR
        ) < 0.2 * big.cost_model.train_time_hours(some_archs[0], P_STAR)

    def test_seed_noise_scaled_up(self, some_archs):
        arch = some_archs[0]
        big = SimulatedTrainer()
        small = SimulatedTrainer(dataset=IMAGENET100)
        std_big = np.std([big.train(arch, P_STAR, s).top1 for s in range(24)])
        std_small = np.std([small.train(arch, P_STAR, s).top1 for s in range(24)])
        assert std_small > std_big

    def test_deterministic_per_dataset(self, some_archs):
        arch = some_archs[0]
        t = SimulatedTrainer(dataset=IMAGENET100)
        assert t.train(arch, P_STAR, 1).top1 == t.train(arch, P_STAR, 1).top1
