"""Golden-value pins for the hidden-landscape draw tables.

The import-time RNG constants in ``trainsim.accuracy_model`` and
``searchspace.proxyless`` were refactored into lazily-computed cached
tables (lint rule ANB001).  The SHA-256 digests below were captured from
the *pre-refactor* module-level arrays: if any digest changes, the hidden
accuracy landscape moved and every benchmark table silently shifts.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.searchspace.proxyless import _structure_tables
from repro.trainsim.accuracy_model import _pairwise_tables


def _sha256(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).tobytes()).hexdigest()


GOLDEN_PAIRWISE = {
    "pair_k5": "fc31ba51071f4bdd12bb39d5364a4b4ece2e1d6d4601b5d20969eda203da9830",
    "pair_se_mismatch": (
        "5655a1f25112332a44a30255493cc131c70de65e4446a7bd63dd29e33552b635"
    ),
    "pair_wide_deep": (
        "b489a04a8a94a7f4f484371426ca07b09d7d333377aefbe5cc3c5cc4116fa58e"
    ),
    "combo_ek": "3b7950055a274125417d489d8d27884a72319931d73596f900425c156c81ca12",
}

GOLDEN_PROXYLESS = {
    "op_bonus": "4f667c5aaba4f4f32daf4e834a025945d1595e2ffac3f6934870e1767475e9c3",
    "pair_same_kernel": (
        "ac591f373bb8a3d60666f9d8707a15528aff66695c9a32081a1bd1d62691fc6a"
    ),
}


class TestPairwiseTables:
    def test_byte_identical_to_pre_refactor(self):
        pair_k5, pair_se_mismatch, pair_wide_deep, combo_ek = _pairwise_tables()
        assert _sha256(pair_k5) == GOLDEN_PAIRWISE["pair_k5"]
        assert _sha256(pair_se_mismatch) == GOLDEN_PAIRWISE["pair_se_mismatch"]
        assert _sha256(pair_wide_deep) == GOLDEN_PAIRWISE["pair_wide_deep"]
        assert _sha256(combo_ek) == GOLDEN_PAIRWISE["combo_ek"]

    def test_shapes_and_spot_values(self):
        pair_k5, pair_se_mismatch, pair_wide_deep, combo_ek = _pairwise_tables()
        assert pair_k5.shape == pair_se_mismatch.shape == pair_wide_deep.shape == (6,)
        assert combo_ek.shape == (7, 3, 2)
        assert pair_k5[0] == 0.0031394401203129847  # anb: noqa[ANB003]
        assert combo_ek[-1, -1, -1] == -0.0008708098834783232  # anb: noqa[ANB003]

    def test_cached_single_instance(self):
        assert _pairwise_tables()[0] is _pairwise_tables()[0]


class TestProxylessTables:
    def test_byte_identical_to_pre_refactor(self):
        op_bonus, pair_same_kernel = _structure_tables()
        assert _sha256(op_bonus) == GOLDEN_PROXYLESS["op_bonus"]
        assert _sha256(pair_same_kernel) == GOLDEN_PROXYLESS["pair_same_kernel"]

    def test_shapes_and_spot_values(self):
        op_bonus, pair_same_kernel = _structure_tables()
        assert op_bonus.shape == (21, 7)
        assert pair_same_kernel.shape == (20,)
        assert op_bonus[0, 0] == -6.113280584857644e-05  # anb: noqa[ANB003]
        assert pair_same_kernel[-1] == 0.0017331949899826588  # anb: noqa[ANB003]

    def test_cached_single_instance(self):
        assert _structure_tables()[0] is _structure_tables()[0]
