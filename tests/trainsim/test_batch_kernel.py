"""Bit-identity of the vectorised trainsim batch kernels vs the scalar loop."""

import numpy as np
import pytest

from repro.core.reliability import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    MeasurementTimeout,
)
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim import (
    BatchTrainResult,
    encode_population,
    supports_batch,
)
from repro.trainsim.datasets import get_dataset
from repro.trainsim.schemes import (
    P_STAR,
    REFERENCE_SCHEME,
    proxy_scheme_candidates,
)
from repro.trainsim.trainer import SimulatedTrainer


@pytest.fixture(scope="module")
def archs():
    space = MnasNetSearchSpace()
    return space.sample_batch(48, rng=np.random.default_rng(17))


SCHEMES = [REFERENCE_SCHEME, P_STAR] + list(proxy_scheme_candidates())[:2]


class TestBatchBitIdentity:
    @pytest.mark.parametrize(
        "scheme", SCHEMES, ids=[f"scheme{i}" for i in range(len(SCHEMES))]
    )
    def test_top1_and_hours_match_scalar_loop(self, archs, scheme):
        trainer = SimulatedTrainer()
        batched = trainer.train_batch(archs, scheme, seeds=0)
        scalar = [trainer.train(a, scheme, seed=0) for a in archs]
        assert batched.top1.tolist() == [r.top1 for r in scalar]
        assert batched.train_hours.tolist() == [r.train_hours for r in scalar]

    def test_per_arch_seeds_match_scalar(self, archs):
        trainer = SimulatedTrainer()
        seeds = tuple(range(len(archs)))
        batched = trainer.train_batch(archs, P_STAR, seeds=seeds)
        scalar = [
            trainer.train(a, P_STAR, seed=s) for a, s in zip(archs, seeds)
        ]
        assert batched.top1.tolist() == [r.top1 for r in scalar]

    @pytest.mark.parametrize("dataset_name", ["imagenet", "imagenet100"])
    def test_dataset_bound_trainer_matches_scalar(self, archs, dataset_name):
        trainer = SimulatedTrainer(dataset=get_dataset(dataset_name))
        batched = trainer.train_batch(archs, P_STAR, seeds=3)
        scalar = [trainer.train(a, P_STAR, seed=3) for a in archs]
        assert batched.top1.tolist() == [r.top1 for r in scalar]
        assert batched.train_hours.tolist() == [r.train_hours for r in scalar]

    def test_results_views_equal_scalar_results(self, archs):
        trainer = SimulatedTrainer()
        batched = trainer.train_batch(archs[:8], P_STAR, seeds=1)
        assert isinstance(batched, BatchTrainResult)
        assert len(batched) == 8
        for view, arch in zip(batched.results(), archs[:8]):
            ref = trainer.train(arch, P_STAR, seed=1)
            assert view.arch == ref.arch
            assert view.top1 == ref.top1
            assert view.train_hours == ref.train_hours
            assert view.seed == ref.seed

    def test_seed_count_mismatch_rejected(self, archs):
        trainer = SimulatedTrainer()
        with pytest.raises(ValueError, match="seeds"):
            trainer.train_batch(archs[:4], P_STAR, seeds=(0, 1))


class TestForeignSpecFallback:
    def test_supports_batch_rejects_foreign_specs(self, archs):
        from repro.searchspace.proxyless import ProxylessSearchSpace

        foreign = ProxylessSearchSpace().sample(np.random.default_rng(0))
        assert supports_batch(archs)
        assert not supports_batch([archs[0], foreign])

    def test_fallback_matches_scalar_loop(self, archs):
        from repro.searchspace.proxyless import ProxylessSearchSpace

        foreign = ProxylessSearchSpace().sample_batch(
            6, rng=np.random.default_rng(5)
        )
        trainer = SimulatedTrainer()
        batched = trainer.train_batch(foreign, P_STAR, seeds=0)
        scalar = [trainer.train(a, P_STAR, seed=0) for a in foreign]
        assert batched.top1.tolist() == [r.top1 for r in scalar]
        assert batched.train_hours.tolist() == [r.train_hours for r in scalar]


class TestBatchFaults:
    def test_crash_raises_at_scalar_index(self, archs):
        victim = archs[20]
        plan = FaultPlan.crash_on([victim.to_string()])
        trainer = SimulatedTrainer(fault_plan=plan)
        with pytest.raises(InjectedCrash):
            trainer.train_batch(archs, P_STAR)
        # The scalar loop dies at the same population index.
        scalar_done = 0
        scalar_trainer = SimulatedTrainer(
            fault_plan=FaultPlan.crash_on([victim.to_string()])
        )
        with pytest.raises(InjectedCrash):
            for a in archs:
                scalar_trainer.train(a, P_STAR)
                scalar_done += 1
        assert scalar_done == 20

    def test_timeout_fault_raises(self, archs):
        plan = FaultPlan([FaultSpec("timeout", keys=[archs[5].to_string()])])
        trainer = SimulatedTrainer(fault_plan=plan)
        with pytest.raises(MeasurementTimeout):
            trainer.train_batch(archs, P_STAR)

    def test_value_faults_match_scalar(self, archs):
        def make_plan():
            return FaultPlan.from_string("nan:0.2,spike:0.3", seed=11)

        batched = SimulatedTrainer(fault_plan=make_plan()).train_batch(
            archs, P_STAR
        )
        scalar_trainer = SimulatedTrainer(fault_plan=make_plan())
        scalar = [scalar_trainer.train(a, P_STAR) for a in archs]
        expect = np.array([r.top1 for r in scalar])
        assert np.array_equal(batched.top1, expect, equal_nan=True)
        assert np.isnan(expect).any() or (expect != batched.top1).sum() == 0

    def test_apply_faults_false_skips_plan(self, archs):
        plan = FaultPlan.crash_on([archs[0].to_string()])
        trainer = SimulatedTrainer(fault_plan=plan)
        clean = trainer.train_batch(archs, P_STAR, apply_faults=False)
        ref = SimulatedTrainer().train_batch(archs, P_STAR)
        assert np.array_equal(clean.top1, ref.top1)


class TestPopulationEncoding:
    def test_encoding_matches_spec_fields(self, archs):
        pop = encode_population(archs)
        assert pop.expansion.shape == (len(archs), 7)
        for i, arch in enumerate(archs):
            assert pop.expansion[i].tolist() == list(arch.expansion)
            assert pop.kernel[i].tolist() == list(arch.kernel)
            assert pop.layers[i].tolist() == list(arch.layers)
            assert pop.se[i].tolist() == list(arch.se)

    def test_flops_match_scalar_counter(self, archs):
        from repro.trainsim.accuracy_model import _counters

        pop = encode_population(archs[:8])
        for i, arch in enumerate(archs[:8]):
            assert pop.flops[i] == float(_counters(arch).flops)
