"""Unit tests for the hidden asymptotic-accuracy landscape."""

import numpy as np

from repro.searchspace.mnasnet import ArchSpec
from repro.trainsim.accuracy_model import (
    asymptotic_accuracy,
    capacity_term,
    idiosyncratic_residual,
    pairwise_term,
    structural_term,
)


class TestDeterminism:
    def test_same_arch_same_accuracy(self, some_archs):
        for arch in some_archs[:10]:
            assert asymptotic_accuracy(arch) == asymptotic_accuracy(arch)

    def test_residual_is_deterministic_and_bounded(self, some_archs):
        for arch in some_archs[:20]:
            r = idiosyncratic_residual(arch)
            assert r == idiosyncratic_residual(arch)
            assert abs(r) <= 0.003


class TestBounds:
    def test_accuracy_in_plausible_imagenet_range(self, some_archs):
        accs = [asymptotic_accuracy(a) for a in some_archs]
        assert all(0.55 <= a <= 0.83 for a in accs)

    def test_spread_is_nontrivial(self, some_archs):
        accs = np.asarray([asymptotic_accuracy(a) for a in some_archs])
        assert accs.std() > 0.005


class TestStructure:
    def test_capacity_increases_with_expansion(self, tiny_arch):
        wider = ArchSpec((6,) * 7, (3,) * 7, (1,) * 7, (0,) * 7)
        assert capacity_term(wider) > capacity_term(tiny_arch)

    def test_capacity_increases_with_depth(self, tiny_arch):
        deeper = ArchSpec((1,) * 7, (3,) * 7, (3,) * 7, (0,) * 7)
        assert capacity_term(deeper) > capacity_term(tiny_arch)

    def test_se_adds_structural_bonus(self, tiny_arch):
        with_se = ArchSpec((1,) * 7, (3,) * 7, (1,) * 7, (1,) * 7)
        assert structural_term(with_se) > structural_term(tiny_arch)

    def test_bigger_is_better_on_average(self, tiny_arch, big_arch):
        assert asymptotic_accuracy(big_arch) > asymptotic_accuracy(tiny_arch)

    def test_pairwise_term_is_small(self, some_archs):
        for arch in some_archs[:20]:
            assert abs(pairwise_term(arch)) < 0.05

    def test_pairwise_term_not_additive(self):
        # Changing stage 0's kernel changes the pairwise term by an amount
        # that depends on stage 1 — the definition of an interaction.
        base = dict(expansion=(1,) * 7, layers=(1,) * 7, se=(0,) * 7)
        k33 = pairwise_term(ArchSpec(kernel=(3, 3, 3, 3, 3, 3, 3), **base))
        k53 = pairwise_term(ArchSpec(kernel=(5, 3, 3, 3, 3, 3, 3), **base))
        k35 = pairwise_term(ArchSpec(kernel=(3, 5, 3, 3, 3, 3, 3), **base))
        k55 = pairwise_term(ArchSpec(kernel=(5, 5, 3, 3, 3, 3, 3), **base))
        assert (k55 - k35) != (k53 - k33)


class TestHiddenness:
    def test_b0_lands_near_published_accuracy(self):
        from repro.searchspace.baselines import EFFICIENTNET_B0

        acc = asymptotic_accuracy(EFFICIENTNET_B0.arch)
        assert 0.755 <= acc <= 0.79  # B0 published: 77.1%
