"""Unit tests for training schemes and the proxy grid."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trainsim.schemes import (
    EVAL_RESOLUTION,
    P_STAR,
    REFERENCE_SCHEME,
    TrainingScheme,
    proxy_scheme_candidates,
)


class TestValidation:
    def test_reference_scheme_is_valid(self):
        assert REFERENCE_SCHEME.epochs == 300
        assert REFERENCE_SCHEME.res_start == EVAL_RESOLUTION

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            TrainingScheme(0, 10, 0, 0, 224, 224)

    def test_rejects_resize_window_outside_run(self):
        with pytest.raises(ValueError):
            TrainingScheme(256, 10, 0, 20, 128, 224)

    def test_rejects_inverted_resize_window(self):
        with pytest.raises(ValueError):
            TrainingScheme(256, 50, 30, 20, 128, 224)

    def test_rejects_shrinking_resolution(self):
        with pytest.raises(ValueError):
            TrainingScheme(256, 50, 0, 20, 224, 128)

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            TrainingScheme(256, 50, 0, 20, 16, 224)


class TestResolutionSchedule:
    def test_constant_resolution(self):
        s = TrainingScheme(256, 10, 0, 0, 224, 224)
        assert all(s.resolution_at(e) == 224 for e in range(10))

    def test_progressive_ramp_endpoints(self):
        s = TrainingScheme(256, 100, 10, 60, 128, 224)
        assert s.resolution_at(0) == 128
        assert s.resolution_at(9) == 128
        assert s.resolution_at(60) == 224
        assert s.resolution_at(99) == 224

    def test_ramp_is_monotone(self):
        s = TrainingScheme(256, 100, 0, 80, 96, 224)
        res = [s.resolution_at(e) for e in range(100)]
        assert res == sorted(res)

    def test_epoch_out_of_range_rejected(self):
        s = TrainingScheme(256, 10, 0, 0, 224, 224)
        with pytest.raises(ValueError):
            s.resolution_at(10)
        with pytest.raises(ValueError):
            s.resolution_at(-1)

    def test_mean_res_sq_ratio_bounds(self):
        s = TrainingScheme(256, 100, 0, 80, 96, 224)
        ratio = s.mean_res_sq_ratio()
        assert (96 / 224) ** 2 <= ratio <= 1.0

    def test_mean_res_sq_ratio_full_res_is_one(self):
        assert REFERENCE_SCHEME.mean_res_sq_ratio() == pytest.approx(1.0)


class TestSerialization:
    @given(
        st.sampled_from([REFERENCE_SCHEME, P_STAR])
        | st.builds(
            TrainingScheme,
            batch_size=st.sampled_from([128, 256, 512]),
            epochs=st.just(100),
            resize_start_epoch=st.integers(0, 10),
            resize_end_epoch=st.integers(20, 80),
            res_start=st.sampled_from([96, 128]),
            res_end=st.sampled_from([192, 224]),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_dict_roundtrip(self, scheme):
        assert TrainingScheme.from_dict(scheme.to_dict()) == scheme

    def test_str_is_compact(self):
        assert str(P_STAR) == "b512-e80-r128>224@0>60"


class TestCandidateGrid:
    def test_all_candidates_valid(self):
        candidates = proxy_scheme_candidates()
        assert len(candidates) > 100
        # Construction already validates; spot-check invariants hold.
        for scheme in candidates[:50]:
            assert scheme.resize_end_epoch <= scheme.epochs

    def test_invalid_combinations_skipped(self):
        grid = {
            "batch_size": (256,),
            "epochs": (10,),
            "resize_start_epoch": (0,),
            "resize_end_epoch": (20,),  # longer than the run: invalid
            "res_start": (128,),
            "res_end": (224,),
        }
        assert proxy_scheme_candidates(grid) == []

    def test_custom_grid(self):
        grid = {
            "batch_size": (256, 512),
            "epochs": (50,),
            "resize_start_epoch": (0,),
            "resize_end_epoch": (40,),
            "res_start": (128,),
            "res_end": (224,),
        }
        assert len(proxy_scheme_candidates(grid)) == 2
