"""Unit tests for the layer graph and its validation."""

import networkx as nx
import pytest

from repro.nn.graph import GraphError, LayerGraph
from repro.nn.layers import Activation, Add, Conv2d, TensorShape, conv_output_hw


def _conv(name, cin, cout, hw, k=1, stride=1):
    out_hw = conv_output_hw(hw, k, stride)
    return Conv2d(
        name=name,
        input_shape=TensorShape(cin, hw, hw),
        output_shape=TensorShape(cout, out_hw, out_hw),
        kernel_size=k,
        stride=stride,
    )


@pytest.fixture
def simple_graph():
    g = LayerGraph("net", TensorShape(3, 8, 8))
    g.add(_conv("c1", 3, 8, 8))
    shape = TensorShape(8, 8, 8)
    g.add(Activation("a1", shape, shape))
    g.add(_conv("c2", 8, 8, 8))
    g.add(Add("res", shape, shape), inputs=("c2", "a1"))
    return g


class TestConstruction:
    def test_sequential_chaining(self, simple_graph):
        assert len(simple_graph) == 4
        assert simple_graph.output_shape == TensorShape(8, 8, 8)

    def test_lookup_and_contains(self, simple_graph):
        assert "c1" in simple_graph
        assert simple_graph["c1"].name == "c1"
        assert "missing" not in simple_graph

    def test_iteration_order(self, simple_graph):
        assert [l.name for l in simple_graph] == ["c1", "a1", "c2", "res"]

    def test_duplicate_name_rejected(self, simple_graph):
        with pytest.raises(GraphError, match="duplicate"):
            simple_graph.add(_conv("c1", 8, 8, 8))

    def test_unknown_producer_rejected(self):
        g = LayerGraph("net", TensorShape(3, 8, 8))
        g.add(_conv("c1", 3, 8, 8))
        with pytest.raises(GraphError, match="unknown layer"):
            g.add(_conv("c2", 8, 8, 8), inputs=("nope",))

    def test_shape_mismatch_rejected(self):
        g = LayerGraph("net", TensorShape(3, 8, 8))
        g.add(_conv("c1", 3, 8, 8))
        with pytest.raises(GraphError, match="expects input"):
            g.add(_conv("c2", 16, 8, 8))  # expects 16 channels, gets 8

    def test_first_layer_must_match_graph_input(self):
        g = LayerGraph("net", TensorShape(3, 8, 8))
        with pytest.raises(GraphError):
            g.add(_conv("c1", 4, 8, 8))

    def test_empty_graph_has_no_output_shape(self):
        g = LayerGraph("net", TensorShape(3, 8, 8))
        with pytest.raises(GraphError):
            _ = g.output_shape


class TestValidation:
    def test_valid_graph_passes(self, simple_graph):
        simple_graph.validate()

    def test_empty_graph_fails(self):
        with pytest.raises(GraphError, match="no layers"):
            LayerGraph("net", TensorShape(3, 8, 8)).validate()

    def test_networkx_export(self, simple_graph):
        g = simple_graph.to_networkx()
        assert isinstance(g, nx.DiGraph)
        assert set(g.nodes) == {"c1", "a1", "c2", "res"}
        assert g.has_edge("a1", "res")
        assert g.has_edge("c2", "res")

    def test_residual_has_two_producers(self, simple_graph):
        g = simple_graph.to_networkx()
        assert g.in_degree("res") == 2

    def test_repr_mentions_name_and_layers(self, simple_graph):
        text = repr(simple_graph)
        assert "net" in text and "4 layers" in text
