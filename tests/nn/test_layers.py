"""Unit tests for the IR layer shape/compute arithmetic."""

import pytest

from repro.nn.layers import (
    Activation,
    Add,
    Conv2d,
    Dense,
    GlobalAvgPool,
    SqueezeExcite,
    TensorShape,
    conv_output_hw,
)


class TestTensorShape:
    def test_numel(self):
        assert TensorShape(3, 4, 5).numel == 60

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            TensorShape(0, 4, 5)
        with pytest.raises(ValueError):
            TensorShape(3, -1, 5)

    def test_str(self):
        assert str(TensorShape(32, 112, 112)) == "32x112x112"


class TestConvOutputHw:
    def test_same_padding_stride1(self):
        assert conv_output_hw(224, 3, 1) == 224

    def test_same_padding_stride2(self):
        assert conv_output_hw(224, 3, 2) == 112
        assert conv_output_hw(7, 3, 2) == 4  # ceil(7/2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            conv_output_hw(0, 3, 1)
        with pytest.raises(ValueError):
            conv_output_hw(10, 3, 0)


class TestConv2d:
    def _conv(self, cin=16, cout=32, hw=56, k=3, stride=1, groups=1):
        out_hw = conv_output_hw(hw, k, stride)
        return Conv2d(
            name="c",
            input_shape=TensorShape(cin, hw, hw),
            output_shape=TensorShape(cout, out_hw, out_hw),
            kernel_size=k,
            stride=stride,
            groups=groups,
        )

    def test_dense_macs_formula(self):
        conv = self._conv(cin=16, cout=32, hw=56, k=3)
        assert conv.macs == 32 * 56 * 56 * 16 * 9

    def test_flops_is_twice_macs(self):
        conv = self._conv()
        assert conv.flops == 2 * conv.macs

    def test_params_with_folded_bias(self):
        conv = self._conv(cin=16, cout=32, k=3)
        assert conv.params == 32 * 16 * 9 + 32

    def test_depthwise_detection_and_macs(self):
        conv = self._conv(cin=32, cout=32, k=3, groups=32)
        assert conv.is_depthwise
        assert conv.op_type == "conv_depthwise"
        assert conv.macs == 32 * 56 * 56 * 1 * 9

    def test_pointwise_detection(self):
        conv = self._conv(cin=16, cout=64, k=1)
        assert conv.is_pointwise
        assert conv.op_type == "conv_pointwise"

    def test_standard_op_type(self):
        assert self._conv(k=3).op_type == "conv_standard"

    def test_rejects_indivisible_groups(self):
        with pytest.raises(ValueError):
            self._conv(cin=15, cout=32, groups=4)

    def test_rejects_inconsistent_spatial_shape(self):
        with pytest.raises(ValueError):
            Conv2d(
                name="c",
                input_shape=TensorShape(8, 56, 56),
                output_shape=TensorShape(8, 55, 55),
                kernel_size=3,
                stride=1,
            )

    def test_weight_bytes_scales_with_precision(self):
        conv = self._conv()
        assert conv.weight_bytes(1.0) * 4 == conv.weight_bytes(4.0)


class TestActivation:
    def test_one_flop_per_element(self):
        shape = TensorShape(8, 4, 4)
        act = Activation("a", shape, shape)
        assert act.flops == shape.numel
        assert act.params == 0

    def test_must_preserve_shape(self):
        with pytest.raises(ValueError):
            Activation("a", TensorShape(8, 4, 4), TensorShape(8, 4, 5))


class TestAdd:
    def test_flops_and_traffic(self):
        shape = TensorShape(8, 4, 4)
        add = Add("r", shape, shape)
        assert add.flops == shape.numel
        # Two operands in, one out.
        assert add.activation_bytes(4.0) == 3 * shape.numel * 4.0

    def test_must_preserve_shape(self):
        with pytest.raises(ValueError):
            Add("r", TensorShape(8, 4, 4), TensorShape(4, 4, 4))


class TestGlobalAvgPool:
    def test_output_must_be_1x1(self):
        with pytest.raises(ValueError):
            GlobalAvgPool("p", TensorShape(8, 4, 4), TensorShape(8, 2, 2))

    def test_flops(self):
        pool = GlobalAvgPool("p", TensorShape(8, 4, 4), TensorShape(8, 1, 1))
        assert pool.flops == 8 * 4 * 4


class TestDense:
    def test_macs_and_params(self):
        fc = Dense("fc", TensorShape(1280, 1, 1), TensorShape(1000, 1, 1))
        assert fc.macs == 1280 * 1000
        assert fc.params == 1280 * 1000 + 1000

    def test_requires_flat_input(self):
        with pytest.raises(ValueError):
            Dense("fc", TensorShape(1280, 7, 7), TensorShape(1000, 1, 1))


class TestSqueezeExcite:
    def test_macs_are_two_1x1_convs(self):
        shape = TensorShape(64, 14, 14)
        se = SqueezeExcite("se", shape, shape, se_channels=16)
        assert se.macs == 64 * 16 * 2

    def test_params(self):
        shape = TensorShape(64, 14, 14)
        se = SqueezeExcite("se", shape, shape, se_channels=16)
        assert se.params == (64 * 16 + 16) + (16 * 64 + 64)

    def test_flops_include_pool_and_scale(self):
        shape = TensorShape(64, 14, 14)
        se = SqueezeExcite("se", shape, shape, se_channels=16)
        assert se.flops == 2 * se.macs + 2 * shape.numel + 64

    def test_op_type(self):
        shape = TensorShape(4, 2, 2)
        assert SqueezeExcite("se", shape, shape, se_channels=1).op_type == "squeeze_excite"

    def test_must_preserve_shape_and_positive_channels(self):
        shape = TensorShape(4, 2, 2)
        with pytest.raises(ValueError):
            SqueezeExcite("se", shape, TensorShape(4, 2, 3), se_channels=1)
        with pytest.raises(ValueError):
            SqueezeExcite("se", shape, shape, se_channels=0)
