"""Unit tests for graph-level compute/memory accounting."""

import pytest

from repro.nn.counters import count_graph
from repro.nn.graph import LayerGraph
from repro.nn.layers import Activation, Conv2d, TensorShape
from repro.searchspace.baselines import EFFICIENTNET_B0
from repro.searchspace.model_builder import build_model


@pytest.fixture
def two_layer_graph():
    g = LayerGraph("net", TensorShape(3, 8, 8))
    g.add(
        Conv2d(
            "c1",
            TensorShape(3, 8, 8),
            TensorShape(8, 8, 8),
            kernel_size=3,
        )
    )
    shape = TensorShape(8, 8, 8)
    g.add(Activation("a1", shape, shape))
    return g


class TestAggregation:
    def test_sums_over_layers(self, two_layer_graph):
        c = count_graph(two_layer_graph)
        conv, act = two_layer_graph.layers
        assert c.macs == conv.macs + act.macs
        assert c.flops == conv.flops + act.flops
        assert c.params == conv.params + act.params
        assert c.num_layers == 2

    def test_peak_is_max_single_layer(self, two_layer_graph):
        c = count_graph(two_layer_graph)
        per_layer = [l.activation_bytes(4.0) for l in two_layer_graph]
        assert c.peak_activation_bytes == max(per_layer)

    def test_precision_scaling(self, two_layer_graph):
        fp32 = count_graph(two_layer_graph, 4.0, 4.0)
        int8 = count_graph(two_layer_graph, 1.0, 1.0)
        assert fp32.weight_bytes == 4 * int8.weight_bytes
        assert fp32.activation_bytes == 4 * int8.activation_bytes
        # Compute counters are precision-independent.
        assert fp32.macs == int8.macs

    def test_unit_helpers(self, two_layer_graph):
        c = count_graph(two_layer_graph)
        assert c.mflops == c.flops / 1e6
        assert c.mparams == c.params / 1e6


class TestReferenceNumbers:
    """EfficientNet-B0 published numbers: ~390M MACs, ~5.3M params @224."""

    def test_b0_macs(self):
        c = count_graph(build_model(EFFICIENTNET_B0.arch))
        assert 370e6 < c.macs < 420e6

    def test_b0_params(self):
        c = count_graph(build_model(EFFICIENTNET_B0.arch))
        assert 5.0e6 < c.params < 5.6e6

    def test_flops_scale_quadratically_with_resolution(self):
        arch = EFFICIENTNET_B0.arch
        c224 = count_graph(build_model(arch, resolution=224))
        c112 = count_graph(build_model(arch, resolution=112))
        ratio = c224.macs / c112.macs
        assert 3.5 < ratio < 4.5  # conv-dominated: ~4x

    def test_params_do_not_depend_on_resolution(self):
        arch = EFFICIENTNET_B0.arch
        assert (
            count_graph(build_model(arch, resolution=224)).params
            == count_graph(build_model(arch, resolution=112)).params
        )
