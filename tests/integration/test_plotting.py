"""Unit tests for the ASCII figure rendering and CSV exporters."""

import pytest

from repro.experiments.plotting import (
    ascii_curves,
    ascii_scatter,
    curves_to_csv,
    scatter_to_csv,
)


class TestAsciiScatter:
    def test_markers_present(self):
        text = ascii_scatter(
            {"ours": [(1.0, 2.0), (2.0, 3.0)], "base": [(1.5, 2.5)]},
            width=30,
            height=10,
        )
        assert "o" in text and "b" in text
        assert "ours" in text and "base" in text

    def test_log_x_axis(self):
        text = ascii_scatter(
            {"s": [(10.0, 1.0), (10000.0, 2.0)]}, width=30, height=8, logx=True
        )
        assert "1e+04" in text or "10000" in text or "1e4" in text.replace("+0", "")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter({})

    def test_single_point(self):
        text = ascii_scatter({"x": [(1.0, 1.0)]}, width=20, height=6)
        assert "x" in text

    def test_grid_dimensions(self):
        text = ascii_scatter({"a": [(0, 0), (1, 1)]}, width=40, height=12)
        # ylabel line + 12 grid rows + x-axis footer.
        assert len(text.splitlines()) == 14


class TestAsciiCurves:
    def test_renders_multiple_series(self):
        text = ascii_curves({"RS": [0.1, 0.2, 0.2], "RE": [0.1, 0.25, 0.3]})
        assert "RS" in text and "RE" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_curves({"RS": []})
        with pytest.raises(ValueError):
            ascii_curves({})


class TestCsv:
    def test_curves_csv_shape(self):
        csv = curves_to_csv({"a": [1.0, 2.0], "b": [3.0, 4.0]})
        lines = csv.splitlines()
        assert lines[0] == "step,a,b"
        assert lines[1] == "0,1,3"
        assert len(lines) == 3

    def test_curves_csv_rejects_ragged(self):
        with pytest.raises(ValueError):
            curves_to_csv({"a": [1.0], "b": [1.0, 2.0]})

    def test_scatter_csv(self):
        csv = scatter_to_csv({"s": [(1.0, 2.0)]})
        assert csv.splitlines() == ["series,x,y", "s,1,2"]
