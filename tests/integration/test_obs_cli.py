"""CLI telemetry: flag parsing, exit codes, exported JSONL, resume logging."""

import json

import pytest

import repro.obs as obs
from repro.cli import build_parser, main
from repro.obs.validate import validate_metrics_file, validate_trace_file

ARCH = "e1k3L1se1|e6k3L2se1|e6k5L2se1|e6k3L3se1|e6k5L3se1|e6k5L3se1|e6k3L1se1"


@pytest.fixture(autouse=True)
def obs_defaults():
    obs.reset()
    yield
    obs.reset()


class TestFlagParsing:
    @pytest.mark.parametrize(
        "command",
        [
            ["build"],
            ["collect"],
            ["query", "--bench", "anb.json", "--arch", ARCH],
        ],
        ids=["build", "collect", "query"],
    )
    def test_telemetry_flags_on_subcommands(self, command):
        args = build_parser().parse_args(
            command
            + [
                "--log-level",
                "debug",
                "--log-json",
                "--trace-out",
                "trace.jsonl",
                "--metrics-out",
                "metrics.jsonl",
            ]
        )
        assert args.log_level == "debug"
        assert args.log_json
        assert args.trace_out == "trace.jsonl"
        assert args.metrics_out == "metrics.jsonl"

    def test_log_level_defaults_to_info(self):
        assert build_parser().parse_args(["devices"]).log_level == "info"

    def test_unknown_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "--log-level", "loud"])


class TestCollectTelemetry:
    def test_fault_injected_collect_exports_valid_jsonl(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "collect",
                "--out-dir",
                str(tmp_path / "ds"),
                "--num-archs",
                "16",
                "--device",
                "a100",
                "--faults",
                "nan:0.3",
                "--retries",
                "2",
                "--min-success-fraction",
                "0.5",
                "--log-json",
                "--trace-out",
                str(trace_path),
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        assert validate_metrics_file(metrics_path) > 0
        assert validate_trace_file(trace_path) > 0

        counters = {
            r["name"]: r["value"]
            for r in map(json.loads, metrics_path.read_text().splitlines()[1:])
            if r["kind"] == "counter"
        }
        assert counters["collect.tasks_completed"] > 0
        assert counters["collect.retries"] > 0
        assert counters["collect.quarantined"] > 0

        spans = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()[1:]
        ]
        names = {s["name"] for s in spans}
        assert "collect.task" in names
        assert "collect.run_tasks" in names
        assert "dataset.collect" in names

        captured = capsys.readouterr()
        events = [json.loads(line)["event"] for line in captured.err.splitlines()]
        assert "collect.quarantine" in events
        assert "collect.summary" in events

        # The quarantine summary also reaches stdout as machine-readable JSON.
        summary_line = next(
            line
            for line in captured.out.splitlines()
            if line.startswith('{"collect_summary"')
        )
        (summary,) = json.loads(summary_line)["collect_summary"]
        assert summary["quarantined"] > 0
        assert "NonFiniteResult" in summary["failures_by_error"]

        # main() tears telemetry back down on exit.
        assert not obs.telemetry_active()
        assert obs.current_tracer() is None

    def test_gate_failure_exit_code_with_telemetry_on(self, tmp_path, capsys):
        code = main(
            [
                "collect",
                "--out-dir",
                str(tmp_path / "ds"),
                "--num-archs",
                "8",
                "--device",
                "a100",
                "--faults",
                "nan:1.0",
                "--log-json",
            ]
        )
        assert code == 1
        events = [
            json.loads(line)["event"]
            for line in capsys.readouterr().err.splitlines()
        ]
        assert "collect.gate_failed" in events

    def test_crash_resume_logs_replayed_journal_count(self, tmp_path, capsys):
        base = [
            "collect",
            "--out-dir",
            str(tmp_path / "ds"),
            "--num-archs",
            "20",
            "--device",
            "zcu102",
            "--metric",
            "latency",
        ]
        # Seed 2 crashes mid-run, so the journal holds completed records
        # for the resumed run to replay.
        assert main(base + ["--faults", "crash:0.3", "--fault-seed", "2"]) == 1
        capsys.readouterr()

        assert main(base + ["--resume", "--log-json"]) == 0
        replays = [
            json.loads(line)
            for line in capsys.readouterr().err.splitlines()
            if json.loads(line)["event"] == "collect.journal_replayed"
        ]
        assert len(replays) == 1
        assert replays[0]["replayed"] > 0


class TestQueryTelemetry:
    def test_query_stdout_stays_pure_json(self, tmp_path, capsys):
        bench_path = tmp_path / "anb.json"
        assert main(["build", "--out", str(bench_path), "--num-archs", "60"]) == 0
        capsys.readouterr()
        code = main(
            [
                "query",
                "--bench",
                str(bench_path),
                "--arch",
                ARCH,
                "--device",
                "a100",
                "--log-level",
                "debug",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.5 < payload["accuracy"] < 0.9

    def test_query_metrics_include_cache_gauges(self, tmp_path, capsys):
        bench_path = tmp_path / "anb.json"
        metrics_path = tmp_path / "metrics.jsonl"
        assert main(["build", "--out", str(bench_path), "--num-archs", "60"]) == 0
        code = main(
            [
                "query",
                "--bench",
                str(bench_path),
                "--arch",
                ARCH,
                "--metrics-out",
                str(metrics_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()[1:]
        ]
        by_name = {r["name"]: r for r in records}
        assert by_name["query.single"]["kind"] == "counter"
        assert by_name["query.cache_hits"]["kind"] == "gauge"
        assert by_name["query.cache_misses"]["kind"] == "gauge"
