"""CLI integration tests (tiny budgets, real artefacts)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def bench_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "anb.json"
    code = main(["build", "--out", str(path), "--num-archs", "200"])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_devices_listing(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "zcu102" in out and "latency" in out

    def test_build_and_query(self, bench_file, capsys):
        arch = "e1k3L1se1|e6k3L2se1|e6k5L2se1|e6k3L3se1|e6k5L3se1|e6k5L3se1|e6k3L1se1"
        code = main(
            [
                "query",
                "--bench",
                str(bench_file),
                "--arch",
                arch,
                "--device",
                "a100",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.5 < payload["accuracy"] < 0.9
        assert payload["performance"] > 0

    def test_query_corrupt_bench_exits_with_clean_message(
        self, bench_file, tmp_path
    ):
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text(bench_file.read_text().replace("0.7", "0.8", 1))
        arch = "e1k3L1se1|e6k3L2se1|e6k5L2se1|e6k3L3se1|e6k5L3se1|e6k5L3se1|e6k3L1se1"
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "--bench", str(corrupt), "--arch", arch])
        message = str(excinfo.value)
        assert "cannot load benchmark" in message
        assert "sha256 mismatch" in message

    def test_search(self, bench_file, capsys):
        code = main(
            [
                "search",
                "--bench",
                str(bench_file),
                "--device",
                "zcu102",
                "--metric",
                "throughput",
                "--target",
                "700",
                "--budget",
                "60",
            ]
        )
        assert code == 0
        assert "pareto front" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        code = main(["experiment", "fig3"])
        assert code == 0
        assert "tau" in capsys.readouterr().out


class TestCollect:
    def test_collect_single_device(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        code = main(
            [
                "collect",
                "--out-dir",
                str(out_dir),
                "--num-archs",
                "20",
                "--device",
                "a100",
            ]
        )
        assert code == 0
        assert (out_dir / "ANB-a100-Thr.json").exists()
        assert (out_dir / "journal" / "ANB-a100-Thr.jsonl").exists()
        assert "ANB-a100-Thr" in capsys.readouterr().out

    def test_collect_crash_then_resume_byte_identical(self, tmp_path, capsys):
        clean_dir, crash_dir = tmp_path / "clean", tmp_path / "crashy"
        base = ["collect", "--num-archs", "20", "--device", "zcu102",
                "--metric", "latency"]
        assert main(base + ["--out-dir", str(clean_dir)]) == 0

        code = main(
            base
            + ["--out-dir", str(crash_dir), "--faults", "crash:0.3",
               "--fault-seed", "7"]
        )
        assert code == 1
        assert "rerun with --resume" in capsys.readouterr().out

        assert main(base + ["--out-dir", str(crash_dir), "--resume"]) == 0
        clean = (clean_dir / "ANB-zcu102-Lat.json").read_bytes()
        resumed = (crash_dir / "ANB-zcu102-Lat.json").read_bytes()
        assert clean == resumed

    def test_collect_with_retries_and_transient_faults(self, tmp_path):
        out_dir = tmp_path / "ds"
        code = main(
            [
                "collect",
                "--out-dir",
                str(out_dir),
                "--num-archs",
                "12",
                "--device",
                "a100",
                "--faults",
                "timeout:1.0@1",  # every first attempt times out, then heals
                "--retries",
                "2",
            ]
        )
        assert code == 0

    def test_build_loud_failure_below_success_gate(self, tmp_path, capsys):
        code = main(
            [
                "collect",
                "--out-dir",
                str(tmp_path / "ds"),
                "--num-archs",
                "12",
                "--device",
                "a100",
                "--faults",
                "nan:1.0",
            ]
        )
        assert code == 1
        assert "failed" in capsys.readouterr().out
