"""CLI integration tests (tiny budgets, real artefacts)."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def bench_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "anb.json"
    code = main(["build", "--out", str(path), "--num-archs", "200"])
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table9"])


class TestCommands:
    def test_devices_listing(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "zcu102" in out and "latency" in out

    def test_build_and_query(self, bench_file, capsys):
        arch = "e1k3L1se1|e6k3L2se1|e6k5L2se1|e6k3L3se1|e6k5L3se1|e6k5L3se1|e6k3L1se1"
        code = main(
            [
                "query",
                "--bench",
                str(bench_file),
                "--arch",
                arch,
                "--device",
                "a100",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0.5 < payload["accuracy"] < 0.9
        assert payload["performance"] > 0

    def test_search(self, bench_file, capsys):
        code = main(
            [
                "search",
                "--bench",
                str(bench_file),
                "--device",
                "zcu102",
                "--metric",
                "throughput",
                "--target",
                "700",
                "--budget",
                "60",
            ]
        )
        assert code == 0
        assert "pareto front" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        code = main(["experiment", "fig3"])
        assert code == 0
        assert "tau" in capsys.readouterr().out
