"""Integration tests for the experiment runners (tiny budgets)."""

import numpy as np
import pytest

from repro.experiments import (
    fig3_proxy_validation,
    fig4_biobjective,
    fig5_trajectories,
    fig6_evaluation,
    proxy_search_run,
    tab1_acc_surrogates,
    tab2_device_surrogates,
)
from repro.experiments.common import ExperimentContext, format_table, save_result


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(num_archs=220, sample_seed=11)


class TestHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # fixed width

    def test_save_result_json(self, tmp_path):
        path = save_result({"x": np.float64(1.5), "arr": np.arange(3)}, "t", tmp_path)
        assert path.exists()
        import json

        data = json.loads(path.read_text())
        assert data["x"] == 1.5
        assert data["arr"] == [0, 1, 2]


class TestFig3:
    def test_runs_and_reports(self):
        result = fig3_proxy_validation.run(num_archs=20)
        assert 0.6 < result["tau"] <= 1.0
        assert len(result["proxy_mean"]) == 20
        text = fig3_proxy_validation.report(result)
        assert "tau" in text


class TestTables:
    def test_table1_rows(self, ctx):
        result = tab1_acc_surrogates.run(ctx=ctx, families=("rf", "esvr"))
        assert set(result["rows"]) == {"rf", "esvr"}
        for row in result["rows"].values():
            assert 0 < row["r2"] <= 1
        assert "Table 1" in tab1_acc_surrogates.report(result)

    def test_table2_rows(self, ctx):
        result = tab2_device_surrogates.run(ctx=ctx)
        assert len(result["rows"]) == 8  # 6 thr + 2 lat
        assert result["num_archs"] == 220
        assert "Table 2" in tab2_device_surrogates.report(result)


class TestFig5:
    def test_trajectories_shape(self, ctx):
        result = fig5_trajectories.run(ctx=ctx, budget=60, simulated_seeds=(0,))
        for name in ("RS", "RE", "REINFORCE"):
            assert len(result["true"][name]) == 60
            assert len(result["simulated"][name]) == 60
            # Incumbent curves are monotone.
            assert np.all(np.diff(result["true"][name]) >= 0)
        assert "Fig.5" in fig5_trajectories.report(result)


class TestFig4AndFig6:
    def test_biobjective_panels(self, ctx):
        result = fig4_biobjective.run(
            ctx=ctx, budget=60, panels=(("zcu102", "latency"), ("a100", "throughput"))
        )
        assert set(result["panels"]) == {"zcu102|latency", "a100|throughput"}
        for panel in result["panels"].values():
            assert len(panel["pareto"]) >= 1
            assert 1 <= len(panel["picks"]) <= 3
        assert "Fig.4" in fig4_biobjective.report(result)

    def test_fig6_true_evaluation(self, ctx):
        fig4_result = fig4_biobjective.run(
            ctx=ctx, budget=60, panels=(("vck190", "throughput"),)
        )
        result = fig6_evaluation.run(ctx=ctx, fig4_result=fig4_result)
        panel = result["panels"]["vck190|throughput"]
        names = [b["name"] for b in panel["baselines"]]
        assert "effnet-b0" in names
        assert panel["headline_vs_b0"] is not None
        assert "Fig.6" in fig6_evaluation.report(result)


class TestProxySearchRunner:
    def test_capped_run(self):
        result = proxy_search_run.run(
            grid_n=8, pool_size=80, max_evaluations=5, early_stop_tau=None
        )
        assert result["num_evaluated"] <= 5
        assert result["speedup"] > 1
        assert "Proxy search" in proxy_search_run.report(result)
