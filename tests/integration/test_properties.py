"""Cross-cutting property tests on simulator invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hwsim.registry import get_device, list_devices
from repro.searchspace.mnasnet import (
    ArchSpec,
    EXPANSION_CHOICES,
    KERNEL_CHOICES,
    LAYER_CHOICES,
    NUM_STAGES,
    SE_CHOICES,
)
from repro.searchspace.model_builder import build_model
from repro.trainsim.cost_model import TrainingCostModel
from repro.trainsim.schemes import TrainingScheme
from repro.trainsim.trainer import SimulatedTrainer

arch_specs = st.builds(
    ArchSpec,
    expansion=st.tuples(*[st.sampled_from(EXPANSION_CHOICES)] * NUM_STAGES),
    kernel=st.tuples(*[st.sampled_from(KERNEL_CHOICES)] * NUM_STAGES),
    layers=st.tuples(*[st.sampled_from(LAYER_CHOICES)] * NUM_STAGES),
    se=st.tuples(*[st.sampled_from(SE_CHOICES)] * NUM_STAGES),
)

schemes = st.builds(
    TrainingScheme,
    batch_size=st.sampled_from([256, 512, 1024]),
    epochs=st.sampled_from([15, 30, 50, 80, 120]),
    resize_start_epoch=st.just(0),
    resize_end_epoch=st.sampled_from([10, 15]),
    res_start=st.sampled_from([96, 128, 160]),
    res_end=st.sampled_from([192, 224]),
)


def _grow(arch: ArchSpec) -> ArchSpec:
    """A strictly larger architecture (one more layer in stage 0)."""
    layers = list(arch.layers)
    layers[0] += 1
    return ArchSpec(arch.expansion, arch.kernel, tuple(layers), arch.se)


class TestMonotonicities:
    @given(arch_specs)
    @settings(max_examples=15, deadline=None)
    def test_adding_a_layer_increases_latency_everywhere(self, arch):
        bigger = _grow(arch)
        g_small = build_model(arch)
        g_big = build_model(bigger)
        for name in list_devices():
            device = get_device(name)
            assert device.latency_ms(g_big) > device.latency_ms(g_small)

    @given(arch_specs)
    @settings(max_examples=15, deadline=None)
    def test_adding_a_layer_increases_train_cost(self, arch):
        model = TrainingCostModel()
        scheme = TrainingScheme(512, 30, 0, 0, 160, 160)
        assert model.train_time_hours(_grow(arch), scheme) > model.train_time_hours(
            arch, scheme
        )

    @given(arch_specs, schemes)
    @settings(max_examples=25, deadline=None)
    def test_accuracy_always_in_unit_interval(self, arch, scheme):
        trainer = SimulatedTrainer()
        for seed in (0, 1):
            assert 0.0 <= trainer.train(arch, scheme, seed).top1 <= 1.0

    @given(arch_specs, schemes)
    @settings(max_examples=20, deadline=None)
    def test_training_fully_deterministic(self, arch, scheme):
        trainer = SimulatedTrainer()
        a = trainer.train(arch, scheme, seed=7)
        b = trainer.train(arch, scheme, seed=7)
        assert a.top1 == b.top1 and a.train_hours == b.train_hours

    @given(arch_specs)
    @settings(max_examples=10, deadline=None)
    def test_throughput_latency_consistency(self, arch):
        """At batch 1, throughput ~= 1000 / latency_ms on non-FPGA devices."""
        graph = build_model(arch)
        for name in ("a100", "tpuv3"):
            device = get_device(name)
            lat_ms = device.latency_ms(graph, batch=1)
            thr = device.throughput_ips(graph, batch=1)
            assert thr == pytest.approx(1000.0 / lat_ms, rel=1e-9)

    @given(arch_specs)
    @settings(max_examples=10, deadline=None)
    def test_more_epochs_never_hurt_expected_accuracy(self, arch):
        trainer = SimulatedTrainer()
        values = []
        for epochs in (15, 30, 80):
            scheme = TrainingScheme(512, epochs, 0, 0, 224, 224)
            # Compare the deterministic convergence component only: the
            # scheme-interaction term is intentionally non-monotone noise.
            from repro.trainsim.accuracy_model import asymptotic_accuracy
            from repro.trainsim.learning_curve import converged_fraction

            values.append(
                asymptotic_accuracy(arch) * converged_fraction(arch, scheme)
            )
        assert values == sorted(values)


class TestEncodingConsistency:
    @given(arch_specs)
    @settings(max_examples=25, deadline=None)
    def test_counters_agree_between_hash_and_string_identity(self, arch):
        clone = ArchSpec.from_string(arch.to_string())
        assert clone.stable_hash() == arch.stable_hash()
        assert hash(clone) == hash(arch)

    @given(arch_specs, arch_specs)
    @settings(max_examples=25, deadline=None)
    def test_distinct_archs_distinct_strings(self, a, b):
        if a != b:
            assert a.to_string() != b.to_string()
