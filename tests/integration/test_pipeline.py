"""Integration tests: full pipelines across module boundaries."""

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.core.dataset import collect_device_dataset
from repro.core.metrics import kendall_tau
from repro.core.surrogate_fit import SurrogateFitter
from repro.experiments.common import ExperimentContext
from repro.optimizers import Reinforce
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(num_archs=250, sample_seed=3)


class TestDatasetToSurrogate:
    def test_accuracy_surrogate_pipeline(self, ctx):
        report = SurrogateFitter().fit(ctx.accuracy_dataset(), "xgb")
        assert report.r2 > 0.8
        assert report.kendall > 0.6

    def test_device_surrogate_pipeline(self, ctx):
        report = SurrogateFitter().fit(
            ctx.device_dataset("vck190", "throughput"), "xgb"
        )
        # 250 archs leaves only ~25 test points; quality bars are loose here
        # (paper-scale quality is asserted by the benchmark harness).
        assert report.r2 > 0.55
        assert report.kendall > 0.55

    def test_datasets_share_architectures(self, ctx):
        acc = ctx.accuracy_dataset()
        thr = ctx.device_dataset("a100", "throughput")
        assert acc.archs == thr.archs


class TestDeviceDisagreement:
    """The core motivation: device rankings disagree across families."""

    def test_fpga_and_gpu_rank_differently(self, ctx):
        archs = ctx.archs[:100]
        gpu = collect_device_dataset(archs, "a100", "throughput").values
        fpga = collect_device_dataset(archs, "zcu102", "throughput").values
        gpu2 = collect_device_dataset(archs, "rtx3090", "throughput").values
        cross = kendall_tau(gpu, fpga)
        within = kendall_tau(gpu, gpu2)
        assert within > cross + 0.2


class TestZeroCostSearch:
    def test_benchmark_backed_biobjective_search(self, ctx):
        bench = ctx.benchmark()
        result = Reinforce(seed=0).run_biobjective(
            accuracy_fn=bench.query_accuracy,
            perf_fn=lambda a: bench.query_performance(a, "zcu102", "throughput"),
            target=700.0,
            budget=120,
            metric="throughput",
            device="zcu102",
        )
        front = result.pareto_points()
        assert len(front) >= 2
        # The front must span a real accuracy/throughput tradeoff.
        accs = [p[1] for p in front]
        thrs = [p[2] for p in front]
        assert max(accs) - min(accs) > 0.01
        assert max(thrs) / min(thrs) > 1.2

    def test_searched_models_validate_on_simulated_truth(self, ctx, trainer):
        """Top surrogate picks must be genuinely good under true simulation."""
        bench = ctx.benchmark()
        from repro.optimizers import RandomSearch

        result = RandomSearch(seed=1).run(bench.query_accuracy, 200)
        top = result.best_arch
        true_top = trainer.expected_top1(top, P_STAR)
        population = [
            trainer.expected_top1(a, P_STAR) for a in ctx.archs[:100]
        ]
        assert true_top > np.percentile(population, 90)


class TestBenchmarkArtifact:
    def test_build_save_load_query_cycle(self, tmp_path):
        bench, reports = AccelNASBench.build(
            P_STAR, num_archs=200, devices={"tpuv3": ("throughput",)}, sample_seed=5
        )
        assert all(r.r2 > 0.5 for r in reports)
        path = tmp_path / "anb.json"
        bench.save(path)
        loaded = AccelNASBench.load(path)
        from repro.searchspace.mnasnet import MnasNetSearchSpace

        arch = MnasNetSearchSpace(seed=1).sample()
        assert loaded.query(arch, "tpuv3").performance == pytest.approx(
            bench.query(arch, "tpuv3").performance
        )
