"""Smoke tests: the example scripts' core logic at reduced scale.

The examples double as user-facing documentation; these tests import their
``main`` logic where it is cheap, or replicate the scenario at a smaller
size where running the script verbatim would be slow.
"""

import numpy as np
import pytest

from repro import AccelNASBench, P_STAR
from repro.core.metrics import kendall_tau
from repro.hwsim import MeasurementHarness, get_device
from repro.nn import count_graph
from repro.searchspace import MnasNetSearchSpace, build_model


class TestDeviceRankingScenario:
    """examples/device_ranking_study.py at reduced size."""

    def test_flops_is_worse_proxy_for_fpga_than_gpu(self):
        space = MnasNetSearchSpace(seed=11)
        archs = space.sample_batch(50, unique=True)
        flops = np.asarray([count_graph(build_model(a)).flops for a in archs])
        gpu = np.asarray(
            [MeasurementHarness(get_device("a100")).measure_throughput(a) for a in archs]
        )
        fpga = np.asarray(
            [MeasurementHarness(get_device("zcu102")).measure_throughput(a) for a in archs]
        )
        tau_gpu = kendall_tau(-flops, gpu)
        tau_fpga = kendall_tau(-flops, fpga)
        assert tau_gpu > tau_fpga + 0.1


class TestQuickstartScenario:
    """examples/quickstart.py at reduced size."""

    def test_build_and_query_cycle(self):
        bench, reports = AccelNASBench.build(
            P_STAR, num_archs=150, devices={"vck190": ("throughput",)}
        )
        assert all(r.r2 > 0.4 for r in reports)
        arch = MnasNetSearchSpace(seed=7).sample()
        result = bench.query(arch, device="vck190", metric="throughput")
        assert 0.5 < result.accuracy < 0.9
        assert result.performance > 0


class TestGeneralizabilityScenario:
    """examples/generalizability_study.py at reduced size."""

    def test_cross_dataset_rank_correlation_moderate(self):
        from repro.core.dataset import collect_accuracy_dataset, sample_dataset_archs
        from repro.trainsim import IMAGENET100, SimulatedTrainer

        archs = sample_dataset_archs(80, seed=0)
        imagenet = collect_accuracy_dataset(archs, P_STAR)
        small = collect_accuracy_dataset(
            archs, P_STAR, trainer=SimulatedTrainer(dataset=IMAGENET100)
        )
        tau = kendall_tau(imagenet.values, small.values)
        assert 0.3 < tau < 0.98  # correlated, but a misleading search proxy
