"""The out-of-band invariant, end to end: artifact bytes ignore telemetry.

Runs the journaled collect and build CLI paths once with telemetry fully
off and once with everything on (debug logs, tracer, metrics export) and
asserts the produced dataset/benchmark artifacts are byte-identical.
"""

import pytest

import repro.obs as obs
from repro.cli import main


@pytest.fixture(autouse=True)
def obs_defaults():
    obs.reset()
    yield
    obs.reset()


def _telemetry_flags(tmp_path, tag):
    return [
        "--log-level",
        "debug",
        "--log-json",
        "--trace-out",
        str(tmp_path / f"{tag}-trace.jsonl"),
        "--metrics-out",
        str(tmp_path / f"{tag}-metrics.jsonl"),
    ]


def test_collect_artifacts_byte_identical(tmp_path, capsys):
    base = [
        "collect",
        "--num-archs",
        "20",
        "--device",
        "a100",
        "--faults",
        "nan:0.3",
        "--retries",
        "2",
        "--min-success-fraction",
        "0.5",
    ]
    off_dir, on_dir = tmp_path / "off", tmp_path / "on"
    assert main(base + ["--out-dir", str(off_dir), "--log-level", "off"]) == 0
    assert (
        main(base + ["--out-dir", str(on_dir)] + _telemetry_flags(tmp_path, "c"))
        == 0
    )
    capsys.readouterr()

    off_bytes = (off_dir / "ANB-a100-Thr.json").read_bytes()
    on_bytes = (on_dir / "ANB-a100-Thr.json").read_bytes()
    assert off_bytes == on_bytes
    # The journals (replay inputs for --resume) must match too.
    assert (off_dir / "journal" / "ANB-a100-Thr.jsonl").read_bytes() == (
        on_dir / "journal" / "ANB-a100-Thr.jsonl"
    ).read_bytes()


def test_build_artifact_byte_identical(tmp_path, capsys):
    off_path, on_path = tmp_path / "off.json", tmp_path / "on.json"
    base = ["build", "--num-archs", "60"]
    assert main(base + ["--out", str(off_path), "--log-level", "off"]) == 0
    assert (
        main(base + ["--out", str(on_path)] + _telemetry_flags(tmp_path, "b"))
        == 0
    )
    capsys.readouterr()
    assert off_path.read_bytes() == on_path.read_bytes()


def test_fit_kernel_counters_recorded_out_of_band():
    """The partition engine's histogram-kernel counters (fused vs fallback
    passes, partition traffic) must be invisible to the fitted model and
    only ever recorded behind ``telemetry_active()``."""
    import io

    import numpy as np

    from repro.surrogates.forest import RandomForestRegressor

    rng = np.random.default_rng(7)
    X = rng.uniform(size=(300, 8))
    y = X @ rng.normal(size=8)

    def fit():
        model = RandomForestRegressor(n_estimators=4, max_depth=8, seed=1)
        return model.fit(X, y).predict(X)

    quiet = fit()
    assert obs.metrics().counter("surrogate.hist.fused_nodes") == 0
    assert obs.metrics().counter("surrogate.partition.bytes") == 0

    obs.configure(level="info", json=True, stream=io.StringIO())
    try:
        assert obs.telemetry_active()
        loud = fit()
        fused = obs.metrics().counter("surrogate.hist.fused_nodes")
        bincount = obs.metrics().counter("surrogate.hist.bincount_nodes")
        moved = obs.metrics().counter("surrogate.partition.bytes")
    finally:
        obs.reset()
    assert np.array_equal(quiet, loud)
    assert fused + bincount > 0
    assert moved > 0
