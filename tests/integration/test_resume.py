"""Kill-and-resume integration: journaled builds resume byte-identically.

The acceptance bar for the reliability layer: a collection/build killed
mid-run by an injected crash fault and resumed from its write-ahead journal
must produce artifacts byte-identical to an uninterrupted run, under both
serial and parallel (``n_jobs > 1``) collection.
"""

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.core.dataset import (
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
)
from repro.core.reliability import FaultPlan, InjectedCrash, Journal
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def archs():
    return sample_dataset_archs(24, seed=13)


class TestDatasetResume:
    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_accuracy_kill_and_resume_byte_identical(
        self, archs, tmp_path, n_jobs
    ):
        clean = collect_accuracy_dataset(archs, P_STAR, n_jobs=n_jobs)
        journal = tmp_path / f"acc-{n_jobs}.jsonl"
        crash = FaultPlan.crash_on([archs[len(archs) // 2].to_string()])
        with pytest.raises(InjectedCrash):
            collect_accuracy_dataset(
                archs, P_STAR, n_jobs=n_jobs, fault_plan=crash, journal=journal
            )
        # The journal retained completed work but not the whole sample.
        done = Journal(journal, dataset="ANB-Acc").replay()
        assert 0 < len(done) < len(archs)

        resumed = collect_accuracy_dataset(
            archs, P_STAR, n_jobs=n_jobs, journal=journal, resume=True
        )
        assert resumed.archs == clean.archs
        assert np.array_equal(resumed.values, clean.values)
        clean_path, resumed_path = tmp_path / "clean.json", tmp_path / "res.json"
        clean.to_json(clean_path)
        resumed.to_json(resumed_path)
        assert clean_path.read_bytes() == resumed_path.read_bytes()

    @pytest.mark.parametrize("n_jobs", [1, 2])
    def test_device_kill_and_resume_byte_identical(self, archs, tmp_path, n_jobs):
        clean = collect_device_dataset(archs, "zcu102", "latency", n_jobs=n_jobs)
        journal = tmp_path / f"dev-{n_jobs}.jsonl"
        crash = FaultPlan.crash_on([archs[7].to_string()])
        with pytest.raises(InjectedCrash):
            collect_device_dataset(
                archs,
                "zcu102",
                "latency",
                n_jobs=n_jobs,
                fault_plan=crash,
                journal=journal,
            )
        resumed = collect_device_dataset(
            archs, "zcu102", "latency", n_jobs=n_jobs, journal=journal, resume=True
        )
        clean_path, resumed_path = tmp_path / "clean.json", tmp_path / "res.json"
        clean.to_json(clean_path)
        resumed.to_json(resumed_path)
        assert clean_path.read_bytes() == resumed_path.read_bytes()

    def test_double_kill_then_resume(self, archs, tmp_path):
        """Two successive crashes at different points still resume cleanly."""
        clean = collect_accuracy_dataset(archs, P_STAR)
        journal = tmp_path / "acc.jsonl"
        for victim in (archs[2], archs[20]):
            with pytest.raises(InjectedCrash):
                collect_accuracy_dataset(
                    archs,
                    P_STAR,
                    fault_plan=FaultPlan.crash_on([victim.to_string()]),
                    journal=journal,
                    resume=True,
                )
        resumed = collect_accuracy_dataset(
            archs, P_STAR, journal=journal, resume=True
        )
        assert np.array_equal(resumed.values, clean.values)

    def test_resume_with_no_journal_computes_everything(self, archs, tmp_path):
        ds = collect_accuracy_dataset(
            archs, P_STAR, journal=tmp_path / "fresh.jsonl", resume=True
        )
        assert len(ds) == len(archs)


class TestBuildResume:
    @pytest.mark.parametrize("collect_n_jobs", [1, 2])
    def test_build_kill_and_resume_byte_identical(self, tmp_path, collect_n_jobs):
        devices = {"a100": ("throughput",)}
        kwargs = dict(
            num_archs=80,
            devices=devices,
            sample_seed=4,
            collect_n_jobs=collect_n_jobs,
        )
        clean, _ = AccelNASBench.build(P_STAR, **kwargs)
        clean_path = tmp_path / "clean.json"
        clean.save(clean_path)

        victim = sample_dataset_archs(80, seed=4)[40].to_string()
        journal_dir = tmp_path / f"journal-{collect_n_jobs}"
        with pytest.raises(InjectedCrash):
            AccelNASBench.build(
                P_STAR,
                journal_dir=journal_dir,
                fault_plan=FaultPlan.crash_on([victim]),
                **kwargs,
            )
        assert (journal_dir / "ANB-Acc.jsonl").exists()

        resumed, _ = AccelNASBench.build(
            P_STAR, journal_dir=journal_dir, resume=True, **kwargs
        )
        resumed_path = tmp_path / "resumed.json"
        resumed.save(resumed_path)
        assert clean_path.read_bytes() == resumed_path.read_bytes()
