"""P² streaming quantile sketches: exactness, accuracy, determinism."""

import random

import pytest

from repro.obs.sketch import (
    DEFAULT_QUANTILES,
    P2Quantile,
    QuantileSketch,
    quantile_key,
)


def exact_quantile(values, q):
    values = sorted(values)
    rank = q * (len(values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(values) - 1)
    frac = rank - lo
    return values[lo] + (values[hi] - values[lo]) * frac


def test_quantile_key_spellings():
    assert quantile_key(0.5) == "p50"
    assert quantile_key(0.95) == "p95"
    assert quantile_key(0.99) == "p99"
    assert quantile_key(0.999) == "p99.9"


def test_p2_rejects_out_of_range_quantile():
    for bad in (0.0, 1.0, -0.1, 2.0):
        with pytest.raises(ValueError, match=r"\(0, 1\)"):
            P2Quantile(bad)


def test_empty_estimator_returns_none():
    assert P2Quantile(0.5).value() is None


def test_exact_while_five_or_fewer_observations():
    est = P2Quantile(0.5)
    seen = []
    for value in (9.0, 1.0, 5.0, 3.0, 7.0):
        est.observe(value)
        seen.append(value)
        assert est.value() == pytest.approx(exact_quantile(seen, 0.5))


def test_median_converges_on_uniform_stream():
    rng = random.Random(7)
    values = [rng.random() for _ in range(5000)]
    est = P2Quantile(0.5)
    for v in values:
        est.observe(v)
    assert est.value() == pytest.approx(exact_quantile(values, 0.5), abs=0.02)


def test_p99_converges_on_skewed_stream():
    rng = random.Random(11)
    values = [rng.expovariate(10.0) for _ in range(8000)]
    est = P2Quantile(0.99)
    for v in values:
        est.observe(v)
    exact = exact_quantile(values, 0.99)
    assert est.value() == pytest.approx(exact, rel=0.15)


def test_estimate_is_deterministic_function_of_sequence():
    rng = random.Random(3)
    values = [rng.random() for _ in range(500)]

    def run():
        est = P2Quantile(0.95)
        for v in values:
            est.observe(v)
        return est.value()

    assert run() == run()


def test_as_dict_shape():
    est = P2Quantile(0.95)
    est.observe(2.0)
    assert est.as_dict() == {"q": 0.95, "count": 1, "value": 2.0}


def test_sketch_defaults_and_snapshot():
    sketch = QuantileSketch()
    assert sketch.quantiles == DEFAULT_QUANTILES
    for v in (0.2, 0.4, 0.6):
        sketch.observe(v)
    snap = sketch.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(1.2)
    assert snap["min"] == 0.2
    assert snap["max"] == 0.6
    assert set(snap["quantiles"]) == {"p50", "p95", "p99"}
    assert snap["quantiles"]["p50"] == pytest.approx(0.4)


def test_sketch_empty_snapshot_uses_nulls():
    snap = QuantileSketch().snapshot()
    assert snap["count"] == 0
    assert snap["min"] is None
    assert snap["max"] is None
    assert all(v is None for v in snap["quantiles"].values())


def test_sketch_quantile_lookup():
    sketch = QuantileSketch((0.5, 0.9))
    sketch.observe(1.0)
    assert sketch.quantile(0.5) == 1.0
    with pytest.raises(KeyError, match="not tracked"):
        sketch.quantile(0.99)


def test_sketch_rejects_bad_quantile_lists():
    with pytest.raises(ValueError, match="at least one"):
        QuantileSketch(())
    with pytest.raises(ValueError, match="ascending"):
        QuantileSketch((0.9, 0.5))
    with pytest.raises(ValueError, match="ascending"):
        QuantileSketch((0.5, 0.5))
