"""Prometheus exposition rendering: names, values, blocks, grammar."""

import math

import pytest

import repro.obs as obs
from repro.obs.expo import (
    EXPOSITION_CONTENT_TYPE,
    escape_label_value,
    export_prometheus,
    format_value,
    metric_name,
    render_exposition,
    render_registry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.validate import validate_prometheus_file


def test_content_type_pins_exposition_version():
    assert EXPOSITION_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_metric_name_sanitisation():
    assert metric_name("serve.latency.query") == "anb_serve_latency_query"
    assert metric_name("a-b c") == "anb_a_b_c"
    assert metric_name("9lives") == "anb__9lives"
    with pytest.raises(ValueError, match="sanitises to nothing"):
        metric_name("...")


def test_escape_label_value():
    assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_format_value_spellings():
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(math.inf) == "+Inf"
    assert format_value(-math.inf) == "-Inf"
    assert format_value(math.nan) == "NaN"


def test_counter_block_gets_total_suffix():
    snap = {"counters": {"collect.retries": 3.0}}
    text = render_exposition(snap)
    assert "# TYPE anb_collect_retries_total counter" in text
    assert "anb_collect_retries_total 3\n" in text
    # Original dotted name survives as HELP text.
    assert "# HELP anb_collect_retries_total collect.retries" in text


def test_histogram_block_is_cumulative_with_inf_bucket():
    snap = {
        "histograms": {
            "h": {
                "bounds": [0.1, 1.0],
                "bucket_counts": [1, 2, 1],
                "count": 4,
                "sum": 2.5,
            }
        }
    }
    lines = render_exposition(snap).splitlines()
    assert 'anb_h_bucket{le="0.1"} 1' in lines
    assert 'anb_h_bucket{le="1"} 3' in lines  # cumulative
    assert 'anb_h_bucket{le="+Inf"} 4' in lines
    assert "anb_h_sum 2.5" in lines
    assert "anb_h_count 4" in lines


def test_window_block_renders_summary_with_window_labels():
    snap = {
        "windows": {
            "serve.latency.window.query": {
                "count": 4,
                "sum": 0.4,
                "min": 0.05,
                "max": 0.2,
                "quantiles": {"p50": 0.1, "p99": None},
                "windows": {
                    "1m": {
                        "count": 2,
                        "sum": 0.2,
                        "min": 0.05,
                        "max": 0.15,
                        "quantiles": {"p50": 0.1, "p99": 0.15},
                    }
                },
            }
        }
    }
    lines = render_exposition(snap).splitlines()
    flat = "anb_serve_latency_window_query"
    assert f"# TYPE {flat} summary" in lines
    assert f'{flat}{{quantile="0.5"}} 0.1' in lines
    # None quantiles are omitted, not rendered as NaN.
    assert not any('quantile="0.99"} ' in l and "window" not in l for l in lines)
    assert f'{flat}{{window="1m",quantile="0.99"}} 0.15' in lines
    assert f'{flat}_count{{window="1m"}} 2' in lines
    assert f"{flat}_count 4" in lines


def test_extra_gauges_merge_and_override():
    snap = {"gauges": {"serve.generation": 0.0}}
    text = render_exposition(snap, extra_gauges={"serve.generation": 2.0, "x": 1})
    assert "anb_serve_generation 2\n" in text
    assert "anb_x 1\n" in text
    assert "anb_serve_generation 0" not in text


def test_output_is_deterministic_and_sorted():
    snap = {"gauges": {"b": 1.0, "a": 2.0}}
    text = render_exposition(snap)
    assert text == render_exposition(snap)
    assert text.index("anb_a") < text.index("anb_b")


def test_render_registry_and_export_validate(tmp_path):
    reg = MetricsRegistry()
    reg.inc("collect.tasks", 5)
    reg.set_gauge("fit.r2", 0.93)
    reg.observe("fit.seconds", 1.5)
    reg.observe_window("serve.latency.window.query", 0.02)
    text = render_registry(reg)
    assert text.endswith("\n")
    path = tmp_path / "metrics.prom"
    export_prometheus(path, reg)
    assert path.read_text() == text
    assert validate_prometheus_file(path) > 0


def test_default_registry_render_smoke(tmp_path):
    obs.metrics().inc("x")
    path = tmp_path / "default.prom"
    export_prometheus(path)
    assert "anb_x_total 1" in path.read_text()
