"""SLO tracker: availability/latency objectives, burn rates, gauges."""

import pytest

import repro.obs as obs
from repro.obs.slo import SLOTracker, burn_rate


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    clock = FakeClock()
    obs.set_clock(clock)
    return clock


def test_burn_rate_semantics():
    assert burn_rate(None, 0.999) is None
    assert burn_rate(1.0, 0.999) == 0.0
    # 0.2% errors against a 0.1% budget: burning 2x.
    assert burn_rate(0.998, 0.999) == pytest.approx(2.0)
    # target 1.0 has no budget: perfect is 0, anything else unreportable.
    assert burn_rate(1.0, 1.0) == 0.0
    assert burn_rate(0.9, 1.0) is None


def test_constructor_validation():
    with pytest.raises(ValueError, match="target"):
        SLOTracker(availability_target=0.0)
    with pytest.raises(ValueError, match="target"):
        SLOTracker(latency_target=1.5)
    with pytest.raises(ValueError, match="threshold"):
        SLOTracker(latency_threshold=0.0)


def test_5xx_burns_availability_but_4xx_does_not(clock):
    tracker = SLOTracker(availability_target=0.9)
    tracker.record(200, 0.01)
    tracker.record(400, 0.01)  # caller's fault: still "good"
    tracker.record(500, 0.01)
    snap = tracker.snapshot()
    assert snap["availability"]["total"] == 3.0
    assert snap["availability"]["good"] == 2.0
    assert snap["availability"]["ratio"] == pytest.approx(2 / 3)


def test_latency_sli_only_counts_non_5xx(clock):
    tracker = SLOTracker(latency_threshold=0.1)
    tracker.record(200, 0.05)  # fast, good
    tracker.record(200, 0.50)  # slow, bad
    tracker.record(500, 0.001)  # fast 500 must not count as a latency win
    snap = tracker.snapshot()
    assert snap["latency"]["total"] == 2.0
    assert snap["latency"]["good"] == 1.0
    assert snap["latency"]["threshold_s"] == 0.1


def test_windowed_values_age_out(clock):
    tracker = SLOTracker(windows=(60.0, 300.0), bucket_seconds=5.0)
    tracker.record(500, 0.01)
    clock.now = 120.0
    tracker.record(200, 0.01)
    snap = tracker.snapshot()
    avail = snap["availability"]
    assert avail["windows"]["1m"]["total"] == 1.0
    assert avail["windows"]["1m"]["ratio"] == 1.0  # the 500 aged out
    assert avail["windows"]["5m"]["total"] == 2.0
    assert avail["windows"]["5m"]["ratio"] == 0.5


def test_empty_tracker_reports_nulls(clock):
    snap = SLOTracker().snapshot()
    for objective in ("availability", "latency"):
        assert snap[objective]["ratio"] is None
        assert snap[objective]["burn_rate"] is None
        for window in snap[objective]["windows"].values():
            assert window["ratio"] is None


def test_gauges_flatten_and_omit_nulls(clock):
    tracker = SLOTracker(availability_target=0.9, latency_target=0.9)
    gauges = tracker.gauges()
    # No traffic: targets only, no ratios.
    assert gauges == {
        "serve.slo.availability.target": 0.9,
        "serve.slo.latency.target": 0.9,
    }
    tracker.record(200, 0.001)
    gauges = tracker.gauges()
    assert gauges["serve.slo.availability.ratio"] == 1.0
    assert gauges["serve.slo.availability.ratio.1m"] == 1.0
    assert gauges["serve.slo.latency.burn_rate"] == 0.0
    assert all(value is not None for value in gauges.values())


def test_snapshot_is_deterministic_under_fake_clock(clock):
    def run():
        tracker = SLOTracker()
        for status in (200, 200, 503, 404):
            tracker.record(status, 0.02)
        return tracker.snapshot()

    assert run() == run()
