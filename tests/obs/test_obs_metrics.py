"""Metrics registry: counters, gauges, histograms, snapshot and export."""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.validate import SchemaError, validate_metrics_file


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.inc("collect.retries")
    reg.inc("collect.retries", 2.5)
    assert reg.counter("collect.retries") == 3.5
    assert reg.counter("missing") == 0.0


def test_counter_rejects_negative():
    with pytest.raises(ValueError, match=">= 0"):
        MetricsRegistry().inc("x", -1)


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    assert reg.gauge("query.cache_hits") is None
    reg.set_gauge("query.cache_hits", 10)
    reg.set_gauge("query.cache_hits", 4)
    assert reg.gauge("query.cache_hits") == 4.0


def test_histogram_buckets():
    hist = Histogram((0.1, 1.0))
    for value in (0.05, 0.5, 0.7, 5.0):
        hist.observe(value)
    d = hist.as_dict()
    assert d["bucket_counts"] == [1, 2, 1]
    assert d["count"] == 4
    assert d["sum"] == pytest.approx(6.25)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(())
    with pytest.raises(ValueError, match="sorted"):
        Histogram((1.0, 0.5))


def test_observe_creates_histogram_with_default_buckets():
    reg = MetricsRegistry()
    reg.observe("surrogate.fit_seconds", 0.42)
    hist = reg.snapshot()["histograms"]["surrogate.fit_seconds"]
    assert hist["bounds"] == list(DEFAULT_SECONDS_BUCKETS)
    assert hist["count"] == 1


def test_snapshot_is_sorted_and_detached():
    reg = MetricsRegistry()
    reg.inc("b")
    reg.inc("a")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["a", "b"]
    reg.inc("a")
    assert snap["counters"]["a"] == 1.0


def test_clear():
    reg = MetricsRegistry()
    reg.inc("a")
    reg.set_gauge("g", 1)
    reg.observe("h", 0.1)
    reg.observe_window("w", 0.1)
    reg.clear()
    snap = reg.snapshot()
    assert snap == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "windows": {},
    }


def test_threaded_increments_do_not_lose_updates():
    reg = MetricsRegistry()

    def bump():
        for _ in range(1000):
            reg.inc("hits")

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert reg.counter("hits") == 8000.0


def test_export_jsonl_round_trips_schema(tmp_path):
    reg = MetricsRegistry()
    reg.inc("collect.tasks_completed", 20)
    reg.set_gauge("query.cache_hits", 7)
    reg.observe("surrogate.fit_seconds", 0.3)
    path = tmp_path / "metrics.jsonl"
    reg.export_jsonl(path)

    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header == {"schema": "anb-metrics", "schema_version": 1}
    assert validate_metrics_file(path) == 3


def test_validate_rejects_corrupt_export(tmp_path):
    path = tmp_path / "metrics.jsonl"
    path.write_text(
        '{"schema": "anb-metrics", "schema_version": 1}\n'
        '{"kind": "counter", "name": "x"}\n'
    )
    with pytest.raises(SchemaError, match="value"):
        validate_metrics_file(path)
