"""Tracing: null spans, nesting, error status, export, and the timer."""

import json

import pytest

import repro.obs as obs
from repro.obs.trace import _NULL_SPAN
from repro.obs.validate import validate_trace_file


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_without_tracer_is_shared_null_singleton():
    assert obs.current_tracer() is None
    s = obs.span("anything", key="v")
    assert s is _NULL_SPAN
    with s:
        s.set_attr("ignored", 1)


def test_spans_nest_with_parent_ids():
    tracer = obs.install_tracer()
    with obs.span("outer", label="acc"):
        with obs.span("inner"):
            pass
        with obs.span("inner2"):
            pass
    records = {r["name"]: r for r in tracer.records()}
    assert records["outer"]["parent_id"] is None
    assert records["inner"]["parent_id"] == records["outer"]["span_id"]
    assert records["inner2"]["parent_id"] == records["outer"]["span_id"]
    assert records["outer"]["attrs"] == {"label": "acc"}
    ids = [r["span_id"] for r in tracer.records()]
    assert len(ids) == len(set(ids))


def test_span_durations_use_injected_clock():
    clock = FakeClock()
    obs.set_clock(clock)
    tracer = obs.install_tracer()
    with obs.span("work"):
        clock.now = 2.5
    (record,) = tracer.records()
    assert record["start"] == 0.0
    assert record["end"] == 2.5
    assert record["duration"] == 2.5
    assert record["status"] == "ok"


def test_span_records_error_status():
    tracer = obs.install_tracer()
    with pytest.raises(RuntimeError):
        with obs.span("boom"):
            raise RuntimeError("x")
    (record,) = tracer.records()
    assert record["status"] == "error"


def test_set_attr_inside_span():
    tracer = obs.install_tracer()
    with obs.span("s") as s:
        s.set_attr("rows", 12)
    assert tracer.records()[0]["attrs"] == {"rows": 12}


def test_export_jsonl_validates(tmp_path):
    tracer = obs.install_tracer()
    with obs.span("a"):
        with obs.span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {"schema": "anb-trace", "schema_version": 1}
    assert validate_trace_file(path) == 2


def test_tracer_clear_resets_ids():
    tracer = obs.install_tracer()
    with obs.span("a"):
        pass
    tracer.clear()
    with obs.span("b"):
        pass
    assert tracer.records()[0]["span_id"] == 1


def test_timer_is_always_on_and_deterministic():
    clock = FakeClock()
    obs.set_clock(clock)
    with obs.timer() as t:
        clock.now = 1.5
        assert t.seconds == 1.5  # live reading inside the block
        clock.now = 3.0
    clock.now = 99.0
    assert t.seconds == 3.0  # frozen at exit


def test_set_clock_rejects_non_callable():
    with pytest.raises(TypeError):
        obs.set_clock(42)


class TestTraceContextPropagation:
    def test_traceparent_round_trip(self):
        ctx = obs.TraceContext("ab" * 16, "cd" * 8, sampled=True)
        header = obs.format_traceparent(ctx)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = obs.parse_traceparent(header)
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled is True

    def test_unsampled_flag_round_trips(self):
        ctx = obs.TraceContext("ab" * 16, "cd" * 8, sampled=False)
        assert obs.format_traceparent(ctx).endswith("-00")
        assert obs.parse_traceparent(obs.format_traceparent(ctx)).sampled is False

    def test_malformed_traceparent_rejected(self):
        bad = [
            "",
            "garbage",
            "00-short-abcd-01",
            f"00-{'g' * 32}-{'cd' * 8}-01",  # non-hex
            f"ff-{'ab' * 16}-{'cd' * 8}-01",  # reserved version
            f"00-{'0' * 32}-{'cd' * 8}-01",  # all-zero trace id
            f"00-{'ab' * 16}-{'0' * 16}-01",  # all-zero span id
        ]
        for header in bad:
            assert obs.parse_traceparent(header) is None, header

    def test_parse_is_case_insensitive_and_strips(self):
        header = f"  00-{'AB' * 16}-{'CD' * 8}-01  "
        parsed = obs.parse_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16

    def test_child_keeps_trace_id_and_flag(self):
        ctx = obs.TraceContext("ab" * 16, "cd" * 8, sampled=False)
        child = ctx.child("ef" * 8)
        assert child.trace_id == ctx.trace_id
        assert child.span_id == "ef" * 8
        assert child.sampled is False


class TestIdGenerator:
    def test_ids_are_deterministic_per_seed_and_sequence(self):
        a, b = obs.IdGenerator(seed=5), obs.IdGenerator(seed=5)
        assert [a.trace_id(), a.span_id()] == [b.trace_id(), b.span_id()]
        other = obs.IdGenerator(seed=6)
        assert other.trace_id() != obs.IdGenerator(seed=5).trace_id()

    def test_id_shapes(self):
        gen = obs.IdGenerator()
        trace_id, span_id = gen.trace_id(), gen.span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert trace_id != gen.trace_id()  # counter advances


class TestHeadSampler:
    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            obs.HeadSampler(rate=1.5)
        assert obs.HeadSampler(rate=1.0).sampled("ab" * 16) is True
        assert obs.HeadSampler(rate=0.0).sampled("ab" * 16) is False

    def test_partial_rate_is_deterministic_and_plausible(self):
        gen = obs.IdGenerator(seed=1)
        ids = [gen.trace_id() for _ in range(200)]
        sampler = obs.HeadSampler(rate=0.5, seed=0)
        kept = [tid for tid in ids if sampler.sampled(tid)]
        assert kept == [tid for tid in ids if sampler.sampled(tid)]
        assert 60 < len(kept) < 140  # roughly half

    def test_decision_varies_with_seed(self):
        gen = obs.IdGenerator(seed=2)
        ids = [gen.trace_id() for _ in range(64)]
        a = {tid for tid in ids if obs.HeadSampler(0.5, seed=0).sampled(tid)}
        b = {tid for tid in ids if obs.HeadSampler(0.5, seed=9).sampled(tid)}
        assert a != b


class TestTraceRing:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            obs.TraceRing(0)

    def test_record_and_snapshot_shape(self):
        ring = obs.TraceRing(4)
        ctx = obs.TraceContext("ab" * 16, "cd" * 8)
        entry = ring.record(
            "serve.query",
            ctx,
            start=1.0,
            duration=0.25,
            parent_id="ef" * 8,
            attrs={"http.status": 200},
            links=["12" * 8],
        )
        assert entry["trace_id"] == ctx.trace_id
        snap = ring.snapshot()
        assert snap["schema"] == "anb-tracez"
        assert snap["schema_version"] == 1
        assert snap["capacity"] == 4
        assert snap["total"] == 1
        assert snap["dropped"] == 0
        assert snap["entries"][0]["links"] == ["12" * 8]

    def test_ring_drops_oldest_and_counts(self):
        ring = obs.TraceRing(2)
        ctx = obs.TraceContext("ab" * 16, "cd" * 8)
        for i in range(5):
            ring.record(f"span-{i}", ctx, start=float(i), duration=0.1)
        snap = ring.snapshot()
        assert snap["total"] == 5
        assert snap["dropped"] == 3
        assert [e["name"] for e in snap["entries"]] == ["span-3", "span-4"]

    def test_entries_are_detached_copies(self):
        ring = obs.TraceRing(2)
        ring.record("a", obs.TraceContext("ab" * 16, "cd" * 8), 0.0, 0.1)
        ring.entries()[0]["name"] = "mutated"
        assert ring.entries()[0]["name"] == "a"

    def test_clear(self):
        ring = obs.TraceRing(2)
        ring.record("a", obs.TraceContext("ab" * 16, "cd" * 8), 0.0, 0.1)
        ring.clear()
        snap = ring.snapshot()
        assert snap["total"] == 0 and snap["entries"] == []
