"""Tracing: null spans, nesting, error status, export, and the timer."""

import json

import pytest

import repro.obs as obs
from repro.obs.trace import _NULL_SPAN
from repro.obs.validate import validate_trace_file


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_span_without_tracer_is_shared_null_singleton():
    assert obs.current_tracer() is None
    s = obs.span("anything", key="v")
    assert s is _NULL_SPAN
    with s:
        s.set_attr("ignored", 1)


def test_spans_nest_with_parent_ids():
    tracer = obs.install_tracer()
    with obs.span("outer", label="acc"):
        with obs.span("inner"):
            pass
        with obs.span("inner2"):
            pass
    records = {r["name"]: r for r in tracer.records()}
    assert records["outer"]["parent_id"] is None
    assert records["inner"]["parent_id"] == records["outer"]["span_id"]
    assert records["inner2"]["parent_id"] == records["outer"]["span_id"]
    assert records["outer"]["attrs"] == {"label": "acc"}
    ids = [r["span_id"] for r in tracer.records()]
    assert len(ids) == len(set(ids))


def test_span_durations_use_injected_clock():
    clock = FakeClock()
    obs.set_clock(clock)
    tracer = obs.install_tracer()
    with obs.span("work"):
        clock.now = 2.5
    (record,) = tracer.records()
    assert record["start"] == 0.0
    assert record["end"] == 2.5
    assert record["duration"] == 2.5
    assert record["status"] == "ok"


def test_span_records_error_status():
    tracer = obs.install_tracer()
    with pytest.raises(RuntimeError):
        with obs.span("boom"):
            raise RuntimeError("x")
    (record,) = tracer.records()
    assert record["status"] == "error"


def test_set_attr_inside_span():
    tracer = obs.install_tracer()
    with obs.span("s") as s:
        s.set_attr("rows", 12)
    assert tracer.records()[0]["attrs"] == {"rows": 12}


def test_export_jsonl_validates(tmp_path):
    tracer = obs.install_tracer()
    with obs.span("a"):
        with obs.span("b"):
            pass
    path = tmp_path / "trace.jsonl"
    tracer.export_jsonl(path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header == {"schema": "anb-trace", "schema_version": 1}
    assert validate_trace_file(path) == 2


def test_tracer_clear_resets_ids():
    tracer = obs.install_tracer()
    with obs.span("a"):
        pass
    tracer.clear()
    with obs.span("b"):
        pass
    assert tracer.records()[0]["span_id"] == 1


def test_timer_is_always_on_and_deterministic():
    clock = FakeClock()
    obs.set_clock(clock)
    with obs.timer() as t:
        clock.now = 1.5
        assert t.seconds == 1.5  # live reading inside the block
        clock.now = 3.0
    clock.now = 99.0
    assert t.seconds == 3.0  # frozen at exit


def test_set_clock_rejects_non_callable():
    with pytest.raises(TypeError):
        obs.set_clock(42)
