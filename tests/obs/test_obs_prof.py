"""Sampling profiler: collapsed stacks, injection, thread lifecycle."""

import threading
import time

import pytest

from repro.obs.prof import (
    SamplingProfiler,
    collapse_frame_stack,
    profile_for,
)


class FakeCode:
    def __init__(self, filename, name):
        self.co_filename = filename
        self.co_name = name


class FakeFrame:
    def __init__(self, stack):
        """stack: outermost-first list of (filename, name)."""
        frame = None
        for filename, name in stack:
            new = FakeFrame.__new__(FakeFrame)
            new.f_code = FakeCode(filename, name)
            new.f_back = frame
            frame = new
        self.f_code = frame.f_code
        self.f_back = frame.f_back


def make_frame(*names):
    return FakeFrame([("/x/app.py", name) for name in names])


def test_collapse_frame_stack_is_root_first():
    frame = FakeFrame([("/a/main.py", "main"), ("/a/lib.py", "work")])
    assert collapse_frame_stack(frame) == "main.py:main;lib.py:work"


def test_collapse_depth_is_bounded():
    frame = FakeFrame([("/x/m.py", f"f{i}") for i in range(500)])
    collapsed = collapse_frame_stack(frame)
    assert collapsed.count(";") == 127  # MAX_STACK_DEPTH frames


def test_constructor_validation():
    with pytest.raises(ValueError, match="interval"):
        SamplingProfiler(interval=0)
    with pytest.raises(ValueError, match="max_samples"):
        SamplingProfiler(max_samples=0)


def test_sample_once_with_injected_frames():
    profiler = SamplingProfiler(
        frames_fn=lambda: {1: make_frame("main", "work"), 2: make_frame("idle")}
    )
    assert profiler.sample_once() == 2
    counts = profiler.counts()
    assert counts["app.py:main;app.py:work"] == 1
    assert counts["app.py:idle"] == 1
    assert profiler.samples == 1


def test_sample_once_excludes_own_thread():
    profiler = SamplingProfiler(frames_fn=lambda: {7: make_frame("only")})
    assert profiler.sample_once(exclude_thread=7) == 0
    assert profiler.samples == 0


def test_collapsed_output_sorted_hottest_first():
    profiler = SamplingProfiler(frames_fn=lambda: {1: make_frame("hot")})
    for _ in range(3):
        profiler.sample_once()
    profiler._frames_fn = lambda: {1: make_frame("cold")}
    profiler.sample_once()
    text = profiler.collapsed()
    assert text == "app.py:hot 3\napp.py:cold 1\n"
    assert profiler.collapsed() == text  # deterministic


def test_empty_profiler_collapses_to_empty_string():
    assert SamplingProfiler().collapsed() == ""


def test_clear_resets_counts():
    profiler = SamplingProfiler(frames_fn=lambda: {1: make_frame("a")})
    profiler.sample_once()
    profiler.clear()
    assert profiler.samples == 0
    assert profiler.counts() == {}


def test_background_thread_samples_real_stacks():
    profiler = SamplingProfiler(interval=0.002)
    stop = threading.Event()

    def busy_wait_loop():
        while not stop.is_set():
            time.sleep(0.001)

    worker = threading.Thread(target=busy_wait_loop, name="prof-target")
    worker.start()
    profiler.start()
    assert profiler.running
    profiler.start()  # idempotent
    time.sleep(0.08)
    profiler.stop()
    stop.set()
    worker.join()
    assert not profiler.running
    assert profiler.samples > 0
    assert any("busy_wait_loop" in stack for stack in profiler.counts())


def test_stop_without_start_is_noop():
    SamplingProfiler().stop()


def test_profile_for_returns_collapsed_text():
    with pytest.raises(ValueError, match="seconds"):
        profile_for(0)
    text = profile_for(0.05, interval=0.005)
    # This thread blocks in done.wait, so its own stack shows up.
    assert isinstance(text, str)
