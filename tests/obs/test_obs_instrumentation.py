"""Pipeline instrumentation: run_tasks telemetry and the out-of-band invariant."""

import io

import pytest

import repro.obs as obs
from repro.core.reliability import (
    Journal,
    RetryPolicy,
    run_tasks,
)


def _activate():
    """Metrics + spans on, logging captured on a private stream."""
    stream = io.StringIO()
    obs.configure(level="debug", stream=stream, trace=True)
    return stream


class Flaky:
    """Fails each key ``fail_times`` times before succeeding."""

    def __init__(self, fail_times=0, hard_fail=()):
        self.fail_times = fail_times
        self.hard_fail = set(hard_fail)

    def __call__(self, key, attempt):
        if key in self.hard_fail or attempt < self.fail_times:
            return float("nan")
        return float(len(key))


def test_run_tasks_counts_completed_retries_quarantined():
    stream = _activate()
    policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
    outcome = run_tasks(
        ["aa", "b", "ccc"],
        Flaky(fail_times=1, hard_fail={"b"}),
        retry_policy=policy,
        min_success_fraction=0.5,
        label="unit",
    )
    registry = obs.metrics()
    assert registry.counter("collect.tasks_completed") == 2
    assert registry.counter("collect.quarantined") == 1
    # Each key retries once past attempt 0; "b" burns all three attempts.
    assert registry.counter("collect.retries") == 4
    assert outcome.values == {"aa": 2.0, "ccc": 3.0}

    logged = stream.getvalue()
    assert "collect.start" in logged
    assert "collect.retry" in logged
    assert "collect.quarantine" in logged
    assert "collect.summary" in logged
    assert "progress" in logged

    spans = obs.current_tracer().records()
    task_spans = [r for r in spans if r["name"] == "collect.task"]
    assert len(task_spans) == 3
    run_span = next(r for r in spans if r["name"] == "collect.run_tasks")
    assert all(s["parent_id"] == run_span["span_id"] for s in task_spans)


def test_run_tasks_outcome_summary_shape():
    outcome = run_tasks(
        ["a", "bb"],
        Flaky(hard_fail={"a"}),
        min_success_fraction=0.5,
    )
    summary = outcome.summary("acc")
    assert summary == {
        "label": "acc",
        "total": 2,
        "completed": 1,
        "quarantined": 1,
        "replayed": 0,
        "success_fraction": 0.5,
        "failures_by_error": {"NonFiniteResult": 1},
        "quarantined_keys": ["a"],
    }


def test_resumed_run_logs_replayed_count(tmp_path):
    journal = Journal(tmp_path / "run.jsonl", dataset="unit")
    run_tasks(["a", "bb", "ccc"][:2], Flaky(), journal=journal)

    stream = _activate()
    outcome = run_tasks(
        ["a", "bb", "ccc"],
        Flaky(),
        journal=Journal(tmp_path / "run.jsonl", dataset="unit"),
        resume=True,
    )
    assert outcome.replayed == 2
    assert obs.metrics().counter("collect.replayed") == 2
    logged = stream.getvalue()
    assert "collect.journal_replayed" in logged
    assert "replayed=2" in logged


def test_gate_failure_logs_structured_error():
    stream = _activate()
    with pytest.raises(Exception, match="success fraction"):
        run_tasks(["a", "b"], Flaky(hard_fail={"a", "b"}))
    assert "collect.gate_failed" in stream.getvalue()


def test_telemetry_is_out_of_band():
    """Identical values and iteration order with telemetry on and off."""
    keys = ["a", "bb", "ccc", "dddd"]
    policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)

    off = run_tasks(keys, Flaky(fail_times=1), retry_policy=policy)

    _activate()
    on = run_tasks(keys, Flaky(fail_times=1), retry_policy=policy)

    assert off.values == on.values
    assert list(off.values) == list(on.values)
    assert off.failures == on.failures


def test_disabled_run_records_nothing():
    assert not obs.telemetry_active()
    run_tasks(["a"], Flaky())
    assert obs.metrics().snapshot()["counters"] == {}
    assert obs.current_tracer() is None
