"""Obs test fixtures: every test starts and ends with telemetry at defaults."""

import pytest

import repro.obs as obs


@pytest.fixture(autouse=True)
def obs_defaults():
    obs.reset()
    yield
    obs.reset()
