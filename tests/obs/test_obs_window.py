"""Sliding-window rings: bucketing, expiry, windowed quantiles, counters."""

import pytest

import repro.obs as obs
from repro.obs.window import (
    DEFAULT_LATENCY_BOUNDS,
    RingCounter,
    WindowedQuantiles,
    window_label,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    clock = FakeClock()
    obs.set_clock(clock)
    return clock


def test_default_bounds_are_strictly_ascending():
    assert list(DEFAULT_LATENCY_BOUNDS) == sorted(set(DEFAULT_LATENCY_BOUNDS))
    assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-4)
    assert DEFAULT_LATENCY_BOUNDS[-1] == 63.0


def test_window_label_spellings():
    assert window_label(60.0) == "1m"
    assert window_label(300.0) == "5m"
    assert window_label(15.0) == "15s"


def test_constructor_validation():
    with pytest.raises(ValueError, match="windows"):
        WindowedQuantiles(windows=())
    with pytest.raises(ValueError, match="windows"):
        WindowedQuantiles(windows=(300.0, 60.0))
    with pytest.raises(ValueError, match="bucket_seconds"):
        WindowedQuantiles(bucket_seconds=0)
    with pytest.raises(ValueError, match="multiple"):
        WindowedQuantiles(windows=(7.0,), bucket_seconds=5.0)
    with pytest.raises(ValueError, match="bounds"):
        WindowedQuantiles(bounds=())


def test_snapshot_reports_cumulative_and_windows(clock):
    wq = WindowedQuantiles(windows=(60.0, 300.0), bucket_seconds=5.0)
    for v in (0.01, 0.02, 0.03):
        wq.observe(v)
    snap = wq.snapshot()
    assert snap["count"] == 3
    assert set(snap["windows"]) == {"1m", "5m"}
    assert snap["windows"]["1m"]["count"] == 3
    assert snap["windows"]["5m"]["count"] == 3


def test_old_observations_age_out_of_small_window(clock):
    wq = WindowedQuantiles(windows=(60.0, 300.0), bucket_seconds=5.0)
    wq.observe(1.0)
    clock.now = 90.0  # past the 1m window, inside the 5m one
    snap = wq.snapshot()
    assert snap["windows"]["1m"]["count"] == 0
    assert snap["windows"]["1m"]["quantiles"]["p50"] is None
    assert snap["windows"]["5m"]["count"] == 1
    assert snap["count"] == 1  # cumulative sketch never forgets


def test_ring_slot_recycles_after_full_revolution(clock):
    wq = WindowedQuantiles(windows=(60.0,), bucket_seconds=5.0)
    wq.observe(1.0)  # epoch 0
    clock.now = 60.0  # epoch 12 lands in the same slot (ring of 12)
    wq.observe(2.0)
    snap = wq.window_snapshot(60.0)
    assert snap["count"] == 1
    assert snap["min"] == 2.0


def test_windowed_quantiles_are_clamped_to_observed_range(clock):
    wq = WindowedQuantiles(windows=(60.0,), bucket_seconds=5.0)
    for v in (0.011, 0.012, 0.013, 0.014):
        wq.observe(v)
    snap = wq.window_snapshot(60.0)
    assert 0.011 <= snap["quantiles"]["p50"] <= 0.014
    assert 0.011 <= snap["quantiles"]["p99"] <= 0.014


def test_windowed_median_is_close_for_spread_values(clock):
    wq = WindowedQuantiles(windows=(60.0,), bucket_seconds=5.0)
    values = [0.001 * i for i in range(1, 101)]
    for v in values:
        wq.observe(v)
    p50 = wq.window_snapshot(60.0)["quantiles"]["p50"]
    assert p50 == pytest.approx(0.05, rel=0.3)


def test_observe_accepts_explicit_now_independent_of_clock(clock):
    wq = WindowedQuantiles(windows=(60.0,), bucket_seconds=5.0)
    wq.observe(1.0, now=500.0)
    assert wq.window_snapshot(60.0, now=500.0)["count"] == 1
    assert wq.window_snapshot(60.0, now=0.0)["count"] == 0


def test_ring_counter_window_totals(clock):
    counter = RingCounter(windows=(60.0, 300.0), bucket_seconds=5.0)
    counter.add(2.0)
    clock.now = 90.0
    counter.add(3.0)
    assert counter.total == 5.0
    assert counter.window_total(60.0) == 3.0
    assert counter.window_total(300.0) == 5.0
    snap = counter.snapshot()
    assert snap == {"total": 5.0, "windows": {"1m": 3.0, "5m": 5.0}}


def test_ring_counter_slot_recycles(clock):
    counter = RingCounter(windows=(60.0,), bucket_seconds=5.0)
    counter.add(1.0)
    clock.now = 60.0  # same slot, new epoch
    counter.add(1.0)
    assert counter.window_total(60.0) == 1.0
    assert counter.total == 2.0


def test_ring_counter_validation():
    with pytest.raises(ValueError, match="windows"):
        RingCounter(windows=())
    with pytest.raises(ValueError, match="multiple"):
        RingCounter(windows=(8.0,), bucket_seconds=5.0)
