"""Structured logging: formatters, levels, configure/reset lifecycle."""

import io
import json
import logging

import pytest

import repro.obs as obs
from repro.obs.log import ROOT_LOGGER_NAME


def _configured(level="info", json_lines=False):
    stream = io.StringIO()
    obs.configure_logging(level=level, json_lines=json_lines, stream=stream)
    return stream


def test_unknown_level_rejected():
    with pytest.raises(ValueError, match="unknown log level"):
        obs.configure_logging(level="verbose")


def test_key_value_format():
    stream = _configured()
    log = obs.get_logger("repro.core.reliability")
    log.warning("quarantine", key="e1k3", error="MeasurementTimeout", attempts=3)
    line = stream.getvalue().strip()
    assert line == (
        "warning repro.core.reliability quarantine "
        "key=e1k3 error=MeasurementTimeout attempts=3"
    )


def test_key_value_quotes_awkward_strings():
    stream = _configured()
    obs.get_logger("repro.x").info("e", msg="two words", expr="a=b")
    line = stream.getvalue().strip()
    assert 'msg="two words"' in line
    assert 'expr="a=b"' in line


def test_json_format_parseable_with_clock_ts():
    obs.set_clock(lambda: 42.5)
    stream = _configured(json_lines=True)
    obs.get_logger("repro.x").info("fit_done", dataset="acc", seconds=1.25)
    payload = json.loads(stream.getvalue())
    assert payload["level"] == "info"
    assert payload["logger"] == "repro.x"
    assert payload["event"] == "fit_done"
    assert payload["ts"] == 42.5
    assert payload["dataset"] == "acc"
    assert payload["seconds"] == 1.25


def test_level_filtering_and_off():
    stream = _configured(level="warning")
    log = obs.get_logger("repro.x")
    log.info("quiet")
    log.warning("loud")
    assert "quiet" not in stream.getvalue()
    assert "loud" in stream.getvalue()

    stream = _configured(level="off")
    log.error("still_quiet")
    assert stream.getvalue() == ""


def test_reconfigure_replaces_handler_not_stacks():
    _configured()
    stream = _configured()
    obs.get_logger("repro.x").info("once")
    assert stream.getvalue().count("once") == 1


def test_reset_logging_restores_defaults():
    _configured()
    obs.reset_logging()
    root = logging.getLogger(ROOT_LOGGER_NAME)
    assert root.level == logging.NOTSET
    assert root.propagate
    assert not any(
        getattr(h, "_anb_obs_handler", False) for h in root.handlers
    )


def test_configure_sets_active_flag():
    assert not obs.telemetry_active()
    obs.configure(level="info", stream=io.StringIO())
    assert obs.telemetry_active()
    obs.configure(level="off", stream=io.StringIO())
    assert not obs.telemetry_active()
    obs.configure(level="off", stream=io.StringIO(), trace=True)
    assert obs.telemetry_active()
