"""JSONL schema validation: headers, record shapes, CLI exit codes."""

import json

import pytest

from repro.obs.validate import (
    SchemaError,
    main,
    validate_file,
    validate_metrics_file,
    validate_prometheus_file,
    validate_trace_file,
    validate_tracez_file,
)

METRICS_HEADER = '{"schema": "anb-metrics", "schema_version": 1}\n'
TRACE_HEADER = '{"schema": "anb-trace", "schema_version": 1}\n'
SPAN = (
    '{"name": "t", "span_id": %d, "parent_id": null, "start": 0.0,'
    ' "end": 1.0, "duration": 1.0, "thread": "MainThread",'
    ' "status": "ok", "attrs": {}}\n'
)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        validate_metrics_file(path)


def test_wrong_header_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text('{"schema": "anb-journal", "schema_version": 1}\n')
    with pytest.raises(SchemaError, match="header schema"):
        validate_metrics_file(path)
    with pytest.raises(SchemaError, match="unknown schema"):
        validate_file(path)


def test_unknown_metric_kind_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(METRICS_HEADER + '{"kind": "meter", "name": "x"}\n')
    with pytest.raises(SchemaError, match="unknown kind"):
        validate_metrics_file(path)


def test_histogram_length_invariant(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(
        METRICS_HEADER
        + '{"kind": "histogram", "name": "h", "bounds": [1.0],'
        ' "bucket_counts": [1], "count": 1, "sum": 0.5}\n'
    )
    with pytest.raises(SchemaError, match="len\\(bounds\\)\\+1"):
        validate_metrics_file(path)


def test_trace_end_before_start_rejected(tmp_path):
    path = tmp_path / "t.jsonl"
    bad = SPAN % 1
    bad = bad.replace('"end": 1.0', '"end": -1.0')
    path.write_text(TRACE_HEADER + bad)
    with pytest.raises(SchemaError, match="end < start"):
        validate_trace_file(path)


def test_trace_duplicate_span_id_rejected(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(TRACE_HEADER + SPAN % 1 + SPAN % 1)
    with pytest.raises(SchemaError, match="duplicate span_id"):
        validate_trace_file(path)


def test_trace_bad_status_rejected(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(TRACE_HEADER + (SPAN % 1).replace('"ok"', '"meh"'))
    with pytest.raises(SchemaError, match="ok/error"):
        validate_trace_file(path)


def test_invalid_json_line_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(METRICS_HEADER + "{not json\n")
    with pytest.raises(SchemaError, match="invalid JSON"):
        validate_metrics_file(path)


WINDOW_RECORD = {
    "kind": "window",
    "name": "serve.latency.window.query",
    "count": 2,
    "sum": 0.3,
    "min": 0.1,
    "max": 0.2,
    "quantiles": {"p50": 0.15, "p99": None},
    "windows": {
        "1m": {
            "count": 2,
            "sum": 0.3,
            "min": 0.1,
            "max": 0.2,
            "quantiles": {"p50": 0.15},
        }
    },
}


def write_window(tmp_path, mutate=None):
    record = json.loads(json.dumps(WINDOW_RECORD))
    if mutate is not None:
        mutate(record)
    path = tmp_path / "m.jsonl"
    path.write_text(METRICS_HEADER + json.dumps(record) + "\n")
    return path


class TestWindowRecords:
    def test_valid_window_record_passes(self, tmp_path):
        assert validate_metrics_file(write_window(tmp_path)) == 1

    def test_unknown_field_rejected(self, tmp_path):
        path = write_window(tmp_path, lambda r: r.update(surprise=1))
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_metrics_file(path)

    def test_unknown_field_in_sub_window_rejected(self, tmp_path):
        path = write_window(
            tmp_path, lambda r: r["windows"]["1m"].update(windows={})
        )
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_metrics_file(path)

    def test_bad_quantile_key_rejected(self, tmp_path):
        path = write_window(
            tmp_path, lambda r: r["quantiles"].update({"q50": 0.1})
        )
        with pytest.raises(SchemaError, match="quantile key"):
            validate_metrics_file(path)

    def test_non_numeric_quantile_rejected(self, tmp_path):
        path = write_window(
            tmp_path, lambda r: r["quantiles"].update({"p50": "fast"})
        )
        with pytest.raises(SchemaError, match="number"):
            validate_metrics_file(path)

    def test_counter_with_extra_field_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text(
            METRICS_HEADER
            + '{"kind": "counter", "name": "x", "value": 1, "unit": "s"}\n'
        )
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_metrics_file(path)


TRACEZ_PAYLOAD = {
    "schema": "anb-tracez",
    "schema_version": 1,
    "capacity": 4,
    "total": 1,
    "dropped": 0,
    "entries": [
        {
            "name": "serve.query",
            "trace_id": "ab" * 16,
            "span_id": "cd" * 8,
            "parent_id": None,
            "start": 1.0,
            "duration": 0.5,
            "status": "ok",
            "attrs": {"http.status": 200},
            "links": ["ef" * 8],
        }
    ],
}


def write_tracez(tmp_path, mutate=None, indent=None):
    payload = json.loads(json.dumps(TRACEZ_PAYLOAD))
    if mutate is not None:
        mutate(payload)
    path = tmp_path / "tracez.json"
    path.write_text(json.dumps(payload, indent=indent))
    return path


class TestTracezValidation:
    def test_valid_payload_passes(self, tmp_path):
        path = write_tracez(tmp_path)
        assert validate_tracez_file(path) == 1
        assert validate_file(path) == ("anb-tracez", 1)

    def test_pretty_printed_payload_sniffs_correctly(self, tmp_path):
        path = write_tracez(tmp_path, indent=2)
        assert validate_file(path) == ("anb-tracez", 1)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "tracez.json"
        path.write_text("[1, 2]")
        with pytest.raises(SchemaError, match="not an object"):
            validate_tracez_file(path)

    def test_unknown_top_level_field_rejected(self, tmp_path):
        path = write_tracez(tmp_path, lambda p: p.update(extra=1))
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_tracez_file(path)

    def test_unknown_entry_field_rejected(self, tmp_path):
        path = write_tracez(tmp_path, lambda p: p["entries"][0].update(zz=1))
        with pytest.raises(SchemaError, match="unknown fields"):
            validate_tracez_file(path)

    def test_bad_trace_id_rejected(self, tmp_path):
        path = write_tracez(
            tmp_path, lambda p: p["entries"][0].update(trace_id="xyz")
        )
        with pytest.raises(SchemaError, match="32 hex"):
            validate_tracez_file(path)

    def test_bad_span_and_parent_ids_rejected(self, tmp_path):
        path = write_tracez(
            tmp_path, lambda p: p["entries"][0].update(span_id="nope")
        )
        with pytest.raises(SchemaError, match="16 hex"):
            validate_tracez_file(path)
        path = write_tracez(
            tmp_path, lambda p: p["entries"][0].update(parent_id=12)
        )
        with pytest.raises(SchemaError, match="parent_id"):
            validate_tracez_file(path)

    def test_bad_link_rejected(self, tmp_path):
        path = write_tracez(
            tmp_path, lambda p: p["entries"][0].update(links=["tooshort"])
        )
        with pytest.raises(SchemaError, match="link"):
            validate_tracez_file(path)

    def test_bad_status_rejected(self, tmp_path):
        path = write_tracez(
            tmp_path, lambda p: p["entries"][0].update(status="meh")
        )
        with pytest.raises(SchemaError, match="ok/error"):
            validate_tracez_file(path)

    def test_negative_duration_rejected(self, tmp_path):
        path = write_tracez(
            tmp_path, lambda p: p["entries"][0].update(duration=-1.0)
        )
        with pytest.raises(SchemaError, match="negative duration"):
            validate_tracez_file(path)

    def test_more_entries_than_capacity_rejected(self, tmp_path):
        path = write_tracez(tmp_path, lambda p: p.update(capacity=0))
        with pytest.raises(SchemaError, match="capacity"):
            validate_tracez_file(path)


PROM_OK = (
    "# HELP anb_x_total x\n"
    "# TYPE anb_x_total counter\n"
    "anb_x_total 3\n"
    "# TYPE anb_lat summary\n"
    'anb_lat{window="1m",quantile="0.99"} 0.25\n'
    "anb_lat_sum 1.5\n"
    "anb_lat_count 10\n"
)


class TestPrometheusValidation:
    def write(self, tmp_path, text):
        path = tmp_path / "metrics.prom"
        path.write_text(text)
        return path

    def test_valid_exposition_passes(self, tmp_path):
        path = self.write(tmp_path, PROM_OK)
        assert validate_prometheus_file(path) == 4
        assert validate_file(path) == ("prometheus", 4)

    def test_missing_trailing_newline_rejected(self, tmp_path):
        path = self.write(tmp_path, "# TYPE anb_x gauge\nanb_x 1")
        with pytest.raises(SchemaError, match="newline"):
            validate_prometheus_file(path)

    def test_sample_without_type_rejected(self, tmp_path):
        path = self.write(tmp_path, "anb_x 1\n")
        with pytest.raises(SchemaError, match="TYPE"):
            validate_prometheus_file(path)

    def test_malformed_comment_rejected(self, tmp_path):
        path = self.write(tmp_path, "# NOPE anb_x gauge\n")
        with pytest.raises(SchemaError, match="comment"):
            validate_prometheus_file(path)

    def test_bad_label_name_rejected(self, tmp_path):
        path = self.write(
            tmp_path, '# TYPE anb_x gauge\nanb_x{bad-name="1"} 2\n'
        )
        with pytest.raises(SchemaError, match="sample line"):
            validate_prometheus_file(path)

    def test_bad_value_rejected(self, tmp_path):
        path = self.write(tmp_path, "# TYPE anb_x gauge\nanb_x one\n")
        with pytest.raises(SchemaError, match="sample line"):
            validate_prometheus_file(path)

    def test_special_values_accepted(self, tmp_path):
        path = self.write(
            tmp_path,
            "# TYPE anb_x gauge\nanb_x +Inf\n"
            "# TYPE anb_h histogram\n"
            'anb_h_bucket{le="+Inf"} 4\nanb_h_sum 2.5e-3\nanb_h_count 4\n',
        )
        assert validate_prometheus_file(path) == 4


def test_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.jsonl"
    good.write_text(TRACE_HEADER + SPAN % 1)
    bad = tmp_path / "bad.jsonl"
    bad.write_text(TRACE_HEADER + (SPAN % 1).replace('"name": "t", ', ""))

    assert main([str(good)]) == 0
    assert main([str(good), str(bad)]) == 1
    assert main([str(tmp_path / "missing.jsonl")]) == 1
    assert main([]) == 2
    out = capsys.readouterr().out
    assert "ok   " in out
    assert "FAIL " in out
