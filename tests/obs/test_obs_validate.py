"""JSONL schema validation: headers, record shapes, CLI exit codes."""

import pytest

from repro.obs.validate import (
    SchemaError,
    main,
    validate_file,
    validate_metrics_file,
    validate_trace_file,
)

METRICS_HEADER = '{"schema": "anb-metrics", "schema_version": 1}\n'
TRACE_HEADER = '{"schema": "anb-trace", "schema_version": 1}\n'
SPAN = (
    '{"name": "t", "span_id": %d, "parent_id": null, "start": 0.0,'
    ' "end": 1.0, "duration": 1.0, "thread": "MainThread",'
    ' "status": "ok", "attrs": {}}\n'
)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text("")
    with pytest.raises(SchemaError, match="empty"):
        validate_metrics_file(path)


def test_wrong_header_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text('{"schema": "anb-journal", "schema_version": 1}\n')
    with pytest.raises(SchemaError, match="header schema"):
        validate_metrics_file(path)
    with pytest.raises(SchemaError, match="unknown schema"):
        validate_file(path)


def test_unknown_metric_kind_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(METRICS_HEADER + '{"kind": "meter", "name": "x"}\n')
    with pytest.raises(SchemaError, match="unknown kind"):
        validate_metrics_file(path)


def test_histogram_length_invariant(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(
        METRICS_HEADER
        + '{"kind": "histogram", "name": "h", "bounds": [1.0],'
        ' "bucket_counts": [1], "count": 1, "sum": 0.5}\n'
    )
    with pytest.raises(SchemaError, match="len\\(bounds\\)\\+1"):
        validate_metrics_file(path)


def test_trace_end_before_start_rejected(tmp_path):
    path = tmp_path / "t.jsonl"
    bad = SPAN % 1
    bad = bad.replace('"end": 1.0', '"end": -1.0')
    path.write_text(TRACE_HEADER + bad)
    with pytest.raises(SchemaError, match="end < start"):
        validate_trace_file(path)


def test_trace_duplicate_span_id_rejected(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(TRACE_HEADER + SPAN % 1 + SPAN % 1)
    with pytest.raises(SchemaError, match="duplicate span_id"):
        validate_trace_file(path)


def test_trace_bad_status_rejected(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text(TRACE_HEADER + (SPAN % 1).replace('"ok"', '"meh"'))
    with pytest.raises(SchemaError, match="ok/error"):
        validate_trace_file(path)


def test_invalid_json_line_rejected(tmp_path):
    path = tmp_path / "m.jsonl"
    path.write_text(METRICS_HEADER + "{not json\n")
    with pytest.raises(SchemaError, match="invalid JSON"):
        validate_metrics_file(path)


def test_main_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.jsonl"
    good.write_text(TRACE_HEADER + SPAN % 1)
    bad = tmp_path / "bad.jsonl"
    bad.write_text(TRACE_HEADER + (SPAN % 1).replace('"name": "t", ', ""))

    assert main([str(good)]) == 0
    assert main([str(good), str(bad)]) == 1
    assert main([str(tmp_path / "missing.jsonl")]) == 1
    assert main([]) == 2
    out = capsys.readouterr().out
    assert "ok   " in out
    assert "FAIL " in out
