"""Progress heartbeat: beat cadence, stats math, thread safety."""

import threading

import pytest

import repro.obs as obs
from repro.obs.progress import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class CaptureLogger:
    def __init__(self):
        self.events = []

    def info(self, event, **fields):
        self.events.append((event, fields))


@pytest.fixture()
def clock():
    c = FakeClock()
    obs.set_clock(c)
    return c


def test_beats_every_n_completions(clock):
    log = CaptureLogger()
    rep = ProgressReporter(total=10, every_n=4, every_s=1e9, logger=log)
    for _ in range(9):
        rep.task_done()
    assert len(log.events) == 2  # after 4 and 8
    assert log.events[0][1]["done"] == 4


def test_beats_on_elapsed_time(clock):
    log = CaptureLogger()
    rep = ProgressReporter(total=100, every_n=1000, every_s=10.0, logger=log)
    clock.now = 5.0
    rep.task_done()
    assert log.events == []
    clock.now = 11.0
    rep.task_done()
    assert len(log.events) == 1


def test_finish_stats_rate_and_eta(clock):
    log = CaptureLogger()
    rep = ProgressReporter(total=8, label="acc", every_n=1000, logger=log)
    for _ in range(4):
        rep.task_done()
    rep.retry()
    rep.retry()
    rep.quarantine()
    clock.now = 2.0
    stats = rep.finish()
    assert stats == {
        "label": "acc",
        "done": 4,
        "total": 8,
        "elapsed_s": 2.0,
        "rate": 2.0,
        "eta_s": 2.0,
        "retries": 2,
        "quarantined": 1,
    }
    assert log.events[-1][0] == "progress"


def test_rejects_bad_every_n():
    with pytest.raises(ValueError):
        ProgressReporter(total=1, every_n=0)


def test_thread_safe_counting(clock):
    log = CaptureLogger()
    rep = ProgressReporter(total=800, every_n=10**9, every_s=1e9, logger=log)

    def work():
        for _ in range(100):
            rep.task_done()

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert rep.finish()["done"] == 800
