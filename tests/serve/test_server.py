"""End-to-end server drills: correctness, shedding, deadlines, breakers,
hot reload, graceful drain, and telemetry byte-equivalence."""

import asyncio
import copy
import io
import shutil

import pytest

import repro.obs as obs
from repro.core.benchmark import AccelNASBench
from repro.core.reliability import RetryPolicy
from repro.searchspace import ArchSpec
from repro.serve import (
    BenchServer,
    ClientConnection,
    DrillPlan,
    ServerConfig,
    truncate_shard,
)
from repro.serve.http import _read_response, _render_request
from repro.serve.lifecycle import BenchmarkHandle, ReloadError


async def start_server(bench, **overrides) -> tuple[BenchServer, asyncio.Task]:
    config = ServerConfig(port=0, **overrides)
    server = BenchServer(bench, config)
    await server.start()
    task = asyncio.create_task(server.run())
    return server, task


async def stop_server(server: BenchServer, task: asyncio.Task) -> None:
    server.request_stop()
    await asyncio.wait_for(task, timeout=10.0)


def run(coro):
    return asyncio.run(coro)


class TestQueryEndpoints:
    def test_query_matches_direct_bench_call(self, serve_bench, arch_strings):
        arch = arch_strings[0]

        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    status, _, body = await conn.request(
                        "POST",
                        "/query",
                        {"arch": arch, "device": "a100", "metric": "throughput"},
                    )
            finally:
                await stop_server(server, task)
            return status, body

        status, body = run(main())
        assert status == 200
        direct = serve_bench.query(
            ArchSpec.from_string(arch), "a100", "throughput"
        )
        assert body["accuracy"] == direct.accuracy
        assert body["performance"] == direct.performance
        assert body["arch"] == arch

    def test_accuracy_only_query(self, serve_bench, arch_strings):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    return await conn.request(
                        "POST", "/query", {"arch": arch_strings[1]}
                    )
            finally:
                await stop_server(server, task)

        status, _, body = run(main())
        assert status == 200
        assert body["performance"] is None
        assert body["device"] is None

    def test_batch_query_matches_query_batch(self, serve_bench, arch_strings):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    return await conn.request(
                        "POST",
                        "/batch-query",
                        {"archs": arch_strings, "device": "a100"},
                    )
            finally:
                await stop_server(server, task)

        status, _, body = run(main())
        assert status == 200
        assert body["count"] == len(arch_strings)
        direct = serve_bench.query_batch(
            [ArchSpec.from_string(a) for a in arch_strings], "a100", "throughput"
        )
        for item, expected in zip(body["results"], direct):
            assert item["accuracy"] == expected.accuracy
            assert item["performance"] == expected.performance

    def test_pareto_front(self, serve_bench, arch_strings):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    return await conn.request(
                        "POST",
                        "/pareto",
                        {"archs": arch_strings, "device": "a100"},
                    )
            finally:
                await stop_server(server, task)

        status, _, body = run(main())
        assert status == 200
        assert 1 <= body["count"] <= len(arch_strings)
        # Front members must not dominate each other (both objectives max:
        # accuracy and throughput).
        front = body["front"]
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (
                    a["accuracy"] >= b["accuracy"]
                    and a["performance"] >= b["performance"]
                    and (
                        a["accuracy"] > b["accuracy"]
                        or a["performance"] > b["performance"]
                    )
                )

    def test_concurrent_queries_coalesce(self, serve_bench, arch_strings):
        async def main():
            server, task = await start_server(
                serve_bench, max_batch=16, max_delay=0.05
            )
            try:
                conns = [
                    ClientConnection("127.0.0.1", server.port) for _ in range(8)
                ]
                results = await asyncio.gather(
                    *(
                        conn.request(
                            "POST",
                            "/query",
                            {"arch": arch, "device": "a100"},
                        )
                        for conn, arch in zip(conns, arch_strings)
                    )
                )
                stats = server.coalescer.stats()
                for conn in conns:
                    await conn.close()
            finally:
                await stop_server(server, task)
            return results, stats

        results, stats = run(main())
        assert all(status == 200 for status, _, _ in results)
        assert stats["items_total"] == 8
        # Coalescing happened: fewer surrogate calls than requests.
        assert stats["flush_total"] < 8


class TestInputValidation:
    def test_bad_inputs_are_400(self, serve_bench, arch_strings):
        cases = [
            ("/query", {}),
            ("/query", {"arch": "not|an|arch"}),
            ("/query", {"arch": arch_strings[0], "device": "nope"}),
            ("/query", {"arch": arch_strings[0], "timeout_ms": 0}),
            ("/query", {"arch": arch_strings[0], "timeout_ms": "fast"}),
            ("/batch-query", {"archs": []}),
            ("/batch-query", {"archs": "oops"}),
            ("/pareto", {"archs": arch_strings}),  # device required
        ]

        async def main():
            server, task = await start_server(serve_bench)
            statuses = []
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    for path, payload in cases:
                        status, _, _ = await conn.request("POST", path, payload)
                        statuses.append(status)
            finally:
                await stop_server(server, task)
            return statuses

        assert run(main()) == [400] * len(cases)

    def test_unknown_endpoint_and_method(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    missing, _, _ = await conn.request("GET", "/nope")
                    wrong, _, _ = await conn.request("GET", "/query")
            finally:
                await stop_server(server, task)
            return missing, wrong

        missing, wrong = run(main())
        assert missing == 404
        assert wrong == 405

    def test_bad_input_does_not_trip_breaker(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench, failure_threshold=2)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    for _ in range(6):
                        status, _, _ = await conn.request(
                            "POST", "/query", {"arch": "garbage"}
                        )
                        assert status == 400
                return server.breakers["query"].state
            finally:
                await stop_server(server, task)

        assert run(main()) == "closed"


class TestRobustness:
    def test_deadline_expiry_is_504(self, serve_bench, arch_strings):
        drills = DrillPlan.from_string("slow:1.0@1", slow_seconds=0.2)

        async def main():
            server, task = await start_server(serve_bench, drills=drills)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    slow, _, body = await conn.request(
                        "POST",
                        "/query",
                        {"arch": arch_strings[0], "timeout_ms": 50},
                    )
                    after, _, _ = await conn.request(
                        "POST",
                        "/query",
                        {"arch": arch_strings[0], "timeout_ms": 5000},
                    )
            finally:
                await stop_server(server, task)
            return slow, body, after

        slow, body, after = run(main())
        assert slow == 504
        assert body == {"error": "deadline exceeded"}
        assert after == 200  # drill healed, service recovered

    def test_overload_sheds_429_with_retry_after(self, serve_bench, arch_strings):
        drills = DrillPlan.from_string("slow:1.0@2", slow_seconds=0.4)

        async def main():
            server, task = await start_server(
                serve_bench,
                max_inflight=1,
                max_queue=0,
                retry_after=2.0,
                drills=drills,
            )
            try:
                first = ClientConnection("127.0.0.1", server.port)
                second = ClientConnection("127.0.0.1", server.port)
                blocked = asyncio.create_task(
                    first.request(
                        "POST", "/query", {"arch": arch_strings[0], "device": "a100"}
                    )
                )
                await asyncio.sleep(0.1)  # let it occupy the only slot
                shed_status, shed_headers, shed_body = await second.request(
                    "POST", "/query", {"arch": arch_strings[1], "device": "a100"}
                )
                ok_status, _, _ = await blocked
                await first.close()
                await second.close()
            finally:
                await stop_server(server, task)
            return shed_status, shed_headers, shed_body, ok_status

        shed_status, shed_headers, shed_body, ok_status = run(main())
        assert shed_status == 429
        assert shed_headers["retry-after"] == "2"
        assert shed_body == {"error": "overloaded"}
        assert ok_status == 200  # the admitted request still completed

    def test_breaker_trips_then_recovers(self, serve_bench, arch_strings):
        drills = DrillPlan.from_string("error:1.0@2")
        recovery = RetryPolicy(base_delay=0.05, backoff=2.0, jitter=0.0)

        async def main():
            server, task = await start_server(
                serve_bench,
                failure_threshold=2,
                breaker_recovery=recovery,
                drills=drills,
            )
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    payload = {"arch": arch_strings[0], "device": "a100"}
                    failures = [
                        (await conn.request("POST", "/query", payload))[0]
                        for _ in range(2)
                    ]
                    assert server.breakers["query"].state == "open"
                    open_status, open_headers, open_body = await conn.request(
                        "POST", "/query", payload
                    )
                    await asyncio.sleep(0.06)  # cooldown = 0.05 exactly
                    probe_status, _, _ = await conn.request(
                        "POST", "/query", payload
                    )
                    closed = server.breakers["query"].state
            finally:
                await stop_server(server, task)
            return failures, open_status, open_headers, open_body, probe_status, closed

        failures, open_status, open_headers, open_body, probe, closed = run(main())
        assert failures == [500, 500]
        assert open_status == 503
        assert open_body == {"error": "circuit open"}
        assert open_headers["retry-after"] == "1"
        assert probe == 200  # half-open probe succeeded (drill healed at @2)
        assert closed == "closed"

    def test_graceful_drain_finishes_inflight(self, serve_bench, arch_strings):
        drills = DrillPlan.from_string("slow:1.0@1", slow_seconds=0.3)

        async def main():
            server, task = await start_server(serve_bench, drills=drills)
            conn = ClientConnection("127.0.0.1", server.port)
            inflight = asyncio.create_task(
                conn.request(
                    "POST", "/query", {"arch": arch_strings[0], "device": "a100"}
                )
            )
            await asyncio.sleep(0.1)  # request is mid-handler
            server.request_stop()
            status, _, body = await inflight
            await conn.close()
            await asyncio.wait_for(task, timeout=10.0)
            return status, body

        status, body = run(main())
        assert status == 200
        assert body["performance"] is not None


class TestLifecycleEndpoints:
    def test_healthz_readyz_statz(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    health = await conn.request("GET", "/healthz")
                    ready = await conn.request("GET", "/readyz")
                    stats = await conn.request("GET", "/statz")
            finally:
                await stop_server(server, task)
            return health, ready, stats

        health, ready, stats = run(main())
        assert health[0] == 200 and health[2]["status"] == "ok"
        assert ready[0] == 200 and ready[2]["ready"] is True
        assert stats[0] == 200
        assert stats[2]["breakers"]["query"]["state"] == "closed"
        assert stats[2]["admission"]["shed_total"] == 0

    def test_hot_reload_with_inflight_traffic(
        self, serve_store, arch_strings, tmp_path
    ):
        """Reload under concurrent load: zero dropped requests, identical
        results before and after, generation bump."""
        handle = BenchmarkHandle.open(serve_store)

        async def main():
            server, task = await start_server(handle)
            try:
                conns = [
                    ClientConnection("127.0.0.1", server.port) for _ in range(4)
                ]
                payloads = [
                    {"arch": arch, "device": "a100"} for arch in arch_strings[:4]
                ]
                before = await asyncio.gather(
                    *(
                        conn.request("POST", "/query", p)
                        for conn, p in zip(conns, payloads)
                    )
                )
                admin = ClientConnection("127.0.0.1", server.port)
                mixed = await asyncio.gather(
                    admin.request("POST", "/reload"),
                    *(
                        conn.request("POST", "/query", p)
                        for conn, p in zip(conns, payloads)
                    ),
                )
                reload_result, during = mixed[0], mixed[1:]
                after = await asyncio.gather(
                    *(
                        conn.request("POST", "/query", p)
                        for conn, p in zip(conns, payloads)
                    )
                )
                health = await admin.request("GET", "/healthz")
                for conn in conns + [admin]:
                    await conn.close()
            finally:
                await stop_server(server, task)
            return before, during, after, reload_result, health

        before, during, after, reload_result, health = run(main())
        assert reload_result[0] == 200
        assert reload_result[2]["generation"] == 1
        assert health[2]["generation"] == 1
        # Zero dropped in-flight requests, and byte-identical results
        # across the swap (same artifact ⇒ same surrogates).
        for got in (during, after):
            for (s1, _, b1), (s2, _, b2) in zip(before, got):
                assert s1 == s2 == 200
                assert b1 == b2

    def test_reload_failure_rolls_back(
        self, serve_store, arch_strings, tmp_path
    ):
        damaged = tmp_path / "damaged.store"
        shutil.copytree(serve_store, damaged)
        truncate_shard(damaged)
        handle = BenchmarkHandle.open(serve_store)

        async def main():
            server, task = await start_server(handle)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    failed = await conn.request(
                        "POST", "/reload", {"path": str(damaged)}
                    )
                    ready = await conn.request("GET", "/readyz")
                    query = await conn.request(
                        "POST",
                        "/query",
                        {"arch": arch_strings[0], "device": "a100"},
                    )
            finally:
                await stop_server(server, task)
            return failed, ready, query

        failed, ready, query = run(main())
        assert failed[0] == 500
        assert "failed" in failed[2]["error"]
        # Rollback: still ready, still generation 0, still serving.
        assert ready[0] == 200 and ready[2]["generation"] == 0
        assert query[0] == 200

    def test_concurrent_reload_conflicts(self, serve_store):
        handle = BenchmarkHandle.open(serve_store)

        async def main():
            async with handle._reload_lock:
                with pytest.raises(ReloadError) as err:
                    await handle.reload()
            return err.value.conflict

        assert run(main()) is True

    def test_reload_without_path_is_an_error(self, serve_bench):
        handle = BenchmarkHandle(serve_bench)  # no backing path

        async def main():
            with pytest.raises(ReloadError, match="no artifact path"):
                await handle.reload()

        run(main())


class TestTelemetryEquivalence:
    def test_responses_byte_identical_with_obs_on_and_off(
        self, serve_bench, arch_strings
    ):
        """The whole point of out-of-band telemetry: enabling it must not
        change a single response byte."""

        async def exchange(port, payloads):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            raw = []
            for path, payload in payloads:
                import json

                body = json.dumps(payload, sort_keys=True).encode()
                writer.write(_render_request("POST", path, body, True))
                await writer.drain()
                status, headers, data = await _read_response(reader)
                raw.append((status, tuple(sorted(headers.items())), data))
            writer.close()
            return raw

        payloads = [
            ("/query", {"arch": arch_strings[0], "device": "a100"}),
            ("/batch-query", {"archs": arch_strings[:3], "device": "a100"}),
            ("/pareto", {"archs": arch_strings[:6], "device": "a100"}),
            ("/query", {"arch": "bad"}),
        ]

        async def run_once():
            server, task = await start_server(serve_bench)
            try:
                return await exchange(server.port, payloads)
            finally:
                await stop_server(server, task)

        obs.reset()
        baseline = run(run_once())
        obs.configure(level="debug", json=True, stream=io.StringIO())
        assert obs.telemetry_active()
        try:
            with_obs = run(run_once())
            counted = obs.metrics().counter("serve.requests.query")
        finally:
            obs.reset()
        assert with_obs == baseline
        assert counted > 0  # telemetry actually recorded out of band

    def test_statz_identical_under_telemetry(self, serve_bench, arch_strings):
        async def run_once():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    await conn.request(
                        "POST", "/query", {"arch": arch_strings[0]}
                    )
                    _, _, stats = await conn.request("GET", "/statz")
            finally:
                await stop_server(server, task)
            return stats

        def normalized(stats):
            # Wall-clock-derived fields vary run to run by construction;
            # everything else must be identical under telemetry.
            stats = copy.deepcopy(stats)
            stats["info"]["uptime_s"] = 0.0
            for objective in stats["slo"].values():
                objective["windows"] = {}
            # The latency SLI counts requests under the threshold, which
            # depends on wall-clock latency, not on telemetry state.
            for key in ("good", "ratio", "burn_rate"):
                stats["slo"]["latency"][key] = None
            return stats

        obs.reset()
        baseline = run(run_once())
        obs.configure(level="info", json=True, stream=io.StringIO())
        try:
            with_obs = run(run_once())
        finally:
            obs.reset()
        assert normalized(with_obs) == normalized(baseline)
