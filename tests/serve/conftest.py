"""Serving-layer fixtures: one small fitted benchmark shared by the suite."""

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="session")
def serve_bench():
    bench, _ = AccelNASBench.build(
        P_STAR,
        num_archs=40,
        devices={"a100": ("throughput",)},
        sample_seed=3,
    )
    return bench


@pytest.fixture(scope="session")
def serve_store(serve_bench, tmp_path_factory):
    """The benchmark packed as a columnar store (lazy, memmapped)."""
    path = tmp_path_factory.mktemp("serve_store") / "bench.store"
    serve_bench.save(path, format="columnar")
    return path


@pytest.fixture(scope="session")
def arch_strings(space):
    """Twelve distinct canonical architecture strings."""
    batch = space.sample_batch(12, rng=np.random.default_rng(99), unique=True)
    return [arch.to_string() for arch in batch]
