"""Bounded admission: slots, FIFO queueing, shedding, deadline expiry."""

import asyncio

import pytest

from repro.core.reliability import Deadline, DeadlineExceeded
from repro.serve import AdmissionGate, Overloaded


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_bad_watermarks_rejected(self):
        with pytest.raises(ValueError, match="max_inflight"):
            AdmissionGate(max_inflight=0)
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionGate(max_queue=-1)

    def test_release_without_acquire(self):
        with pytest.raises(RuntimeError, match="without a matching"):
            AdmissionGate().release()


class TestAdmission:
    def test_immediate_admission_up_to_capacity(self):
        async def main():
            gate = AdmissionGate(max_inflight=2, max_queue=0)
            await gate.acquire()
            await gate.acquire()
            assert gate.active == 2
            with pytest.raises(Overloaded):
                await gate.acquire()
            gate.release()
            await gate.acquire()
            assert gate.active == 2

        run(main())

    def test_shed_carries_retry_after_and_counts(self):
        async def main():
            gate = AdmissionGate(max_inflight=1, max_queue=0, retry_after=2.5)
            await gate.acquire()
            with pytest.raises(Overloaded) as err:
                await gate.acquire()
            assert err.value.retry_after == 2.5
            assert gate.shed_total == 1
            assert gate.stats()["shed_total"] == 1

        run(main())

    def test_queued_waiters_admitted_fifo(self):
        async def main():
            gate = AdmissionGate(max_inflight=1, max_queue=4)
            await gate.acquire()
            order = []

            async def waiter(i):
                await gate.acquire()
                order.append(i)
                gate.release()

            tasks = [asyncio.create_task(waiter(i)) for i in range(3)]
            await asyncio.sleep(0)
            assert gate.depth == 3
            gate.release()
            await asyncio.gather(*tasks)
            assert order == [0, 1, 2]
            assert gate.active == 0

        run(main())

    def test_deadline_expiry_while_queued_is_504_path(self):
        async def main():
            gate = AdmissionGate(max_inflight=1, max_queue=4)
            await gate.acquire()
            with pytest.raises(DeadlineExceeded):
                await gate.acquire(Deadline.after(0.01))
            assert gate.expired_total == 1
            assert gate.depth == 0
            # The slot pool stays consistent: release + re-acquire works.
            gate.release()
            await gate.acquire()
            assert gate.active == 1

        run(main())

    def test_cancelled_waiter_does_not_leak_a_slot(self):
        async def main():
            gate = AdmissionGate(max_inflight=1, max_queue=4)
            await gate.acquire()
            task = asyncio.create_task(gate.acquire())
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            gate.release()
            assert gate.active == 0
            await gate.acquire()
            assert gate.active == 1

        run(main())

    def test_expired_deadline_sheds_instantly_when_queue_full(self):
        async def main():
            gate = AdmissionGate(max_inflight=1, max_queue=0)
            await gate.acquire()
            # Queue watermark beats the deadline: Overloaded, not 504.
            with pytest.raises(Overloaded):
                await gate.acquire(Deadline.after(10.0))

        run(main())
