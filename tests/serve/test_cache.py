"""The generation-keyed /query response cache: LRU semantics, byte-identical
responses cache on/off/hit/miss, reload invalidation, and gated telemetry."""

import asyncio
import io
import json

import pytest

import repro.obs as obs
from repro.serve import BenchServer, ClientConnection, ResponseCache, ServerConfig
from repro.serve.http import _read_response, _render_request
from repro.serve.lifecycle import BenchmarkHandle


async def start_server(bench, **overrides):
    config = ServerConfig(port=0, **overrides)
    server = BenchServer(bench, config)
    await server.start()
    task = asyncio.create_task(server.run())
    return server, task


async def stop_server(server, task):
    server.request_stop()
    await asyncio.wait_for(task, timeout=10.0)


def run(coro):
    return asyncio.run(coro)


async def raw_exchange(port, payloads):
    """Raw (status, headers, body-bytes) tuples for byte-level comparison."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    raw = []
    for path, payload in payloads:
        body = json.dumps(payload, sort_keys=True).encode()
        writer.write(_render_request("POST", path, body, True))
        await writer.drain()
        status, headers, data = await _read_response(reader)
        raw.append((status, tuple(sorted(headers.items())), data))
    writer.close()
    return raw


class TestResponseCacheUnit:
    def test_lru_eviction(self):
        cache = ResponseCache(max_entries=2)
        cache.put((0, "a", "", "m"), {"v": 1})
        cache.put((0, "b", "", "m"), {"v": 2})
        # Touch "a" so "b" becomes the eviction candidate.
        assert cache.get((0, "a", "", "m")) == {"v": 1}
        cache.put((0, "c", "", "m"), {"v": 3})
        assert cache.get((0, "b", "", "m")) is None
        assert cache.get((0, "a", "", "m")) == {"v": 1}
        assert cache.get((0, "c", "", "m")) == {"v": 3}
        assert len(cache) == 2

    def test_hit_miss_counters_and_stats(self):
        cache = ResponseCache(max_entries=4)
        assert cache.get((0, "a", "", "m")) is None
        cache.put((0, "a", "", "m"), {"v": 1})
        assert cache.get((0, "a", "", "m")) == {"v": 1}
        assert cache.stats() == {
            "entries": 1,
            "max_entries": 4,
            "hits": 1,
            "misses": 1,
        }

    def test_put_existing_key_updates_and_refreshes(self):
        cache = ResponseCache(max_entries=2)
        cache.put((0, "a", "", "m"), {"v": 1})
        cache.put((0, "b", "", "m"), {"v": 2})
        cache.put((0, "a", "", "m"), {"v": 10})
        cache.put((0, "c", "", "m"), {"v": 3})  # evicts "b", not "a"
        assert cache.get((0, "a", "", "m")) == {"v": 10}
        assert cache.get((0, "b", "", "m")) is None

    def test_clear_keeps_cumulative_counters(self):
        cache = ResponseCache(max_entries=2)
        cache.put((0, "a", "", "m"), {"v": 1})
        cache.get((0, "a", "", "m"))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(max_entries=0)


class TestServerCache:
    def test_repeat_query_hits_and_responses_byte_identical(
        self, serve_bench, arch_strings
    ):
        payload = {
            "arch": arch_strings[0],
            "device": "a100",
            "metric": "throughput",
        }

        async def main():
            server, task = await start_server(serve_bench)
            try:
                raw = await raw_exchange(
                    server.port, [("/query", payload)] * 3
                )
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    _, _, stats = await conn.request("GET", "/statz")
            finally:
                await stop_server(server, task)
            return raw, stats

        raw, stats = run(main())
        assert raw[0][0] == 200
        assert raw[0] == raw[1] == raw[2]
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] == 2
        assert stats["cache"]["entries"] == 1

    def test_cache_off_matches_cache_on_byte_for_byte(
        self, serve_bench, arch_strings
    ):
        payloads = [
            ("/query", {"arch": arch, "device": "a100"})
            for arch in arch_strings[:3]
        ] * 2  # second half are cache hits when caching is on

        async def run_with(cache_size):
            server, task = await start_server(
                serve_bench, cache_size=cache_size
            )
            try:
                raw = await raw_exchange(server.port, payloads)
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    _, _, stats = await conn.request("GET", "/statz")
            finally:
                await stop_server(server, task)
            return raw, stats

        cached, cached_stats = run(run_with(256))
        uncached, uncached_stats = run(run_with(0))
        assert cached == uncached
        assert cached_stats["cache"]["hits"] == 3
        assert uncached_stats["cache"] is None

    def test_reload_bumps_generation_and_clears_entries(
        self, serve_store, arch_strings
    ):
        handle = BenchmarkHandle.open(serve_store)
        payload = {"arch": arch_strings[0], "device": "a100"}

        async def main():
            server, task = await start_server(handle)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    first = await conn.request("POST", "/query", payload)
                    reloaded = await conn.request("POST", "/reload")
                    _, _, stats = await conn.request("GET", "/statz")
                    second = await conn.request("POST", "/query", payload)
                    _, _, stats_after = await conn.request("GET", "/statz")
            finally:
                await stop_server(server, task)
            return first, reloaded, stats, second, stats_after

        first, reloaded, stats, second, stats_after = run(main())
        assert reloaded[0] == 200
        assert stats["cache"]["entries"] == 0
        # Same artifact, new generation: identical answer, but recomputed
        # (a second miss, not a stale-generation hit).
        assert second[2] == first[2]
        assert stats_after["cache"]["misses"] == 2
        assert stats_after["cache"]["hits"] == 0

    def test_cache_telemetry_recorded_out_of_band(
        self, serve_bench, arch_strings
    ):
        payload = {"arch": arch_strings[0], "device": "a100"}

        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    await conn.request("POST", "/query", payload)
                    await conn.request("POST", "/query", payload)
            finally:
                await stop_server(server, task)

        obs.reset()
        obs.configure(level="info", json=True, stream=io.StringIO())
        try:
            assert obs.telemetry_active()
            run(main())
            registry = obs.metrics()
            assert registry.counter("serve.cache.miss") == 1
            assert registry.counter("serve.cache.hit") == 1
        finally:
            obs.reset()
