"""The minimal HTTP layer: parsing, limits, determinism."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_HEADER_BYTES,
    MAX_BODY_BYTES,
    ProtocolError,
    Request,
    Response,
    json_response,
    read_request,
)


def parse(raw: bytes) -> Request | None:
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(main())


class TestReadRequest:
    def test_simple_get(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""
        assert req.keep_alive

    def test_post_with_body(self):
        body = b'{"arch":"x"}'
        raw = (
            b"POST /query HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = parse(raw)
        assert req.method == "POST"
        assert req.body == body

    def test_query_string_stripped(self):
        req = parse(b"GET /statz?verbose=1 HTTP/1.1\r\n\r\n")
        assert req.path == "/statz"

    def test_connection_close_opts_out_of_keepalive(self):
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert not req.keep_alive

    def test_eof_before_any_bytes_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GARBAGE\r\n\r\n")
        assert err.value.status == 400

    def test_header_without_colon_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_headers_are_431(self):
        filler = b"X-Pad: " + b"a" * 4000 + b"\r\n"
        raw = (
            b"GET / HTTP/1.1\r\n"
            + filler * (MAX_HEADER_BYTES // 4000 + 2)
            + b"\r\n"
        )
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 431

    def test_chunked_encoding_is_501(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert err.value.status == 501

    def test_invalid_content_length_is_400(self):
        with pytest.raises(ProtocolError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert err.value.status == 400
        with pytest.raises(ProtocolError) as err:
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        raw = (
            b"POST / HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 413

    def test_truncated_body_is_400(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"
        with pytest.raises(ProtocolError) as err:
            parse(raw)
        assert err.value.status == 400


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        assert Request("POST", "/", {}).json() == {}

    def test_non_object_body_is_400(self):
        req = Request("POST", "/", {}, body=b"[1, 2]")
        with pytest.raises(ProtocolError) as err:
            req.json()
        assert err.value.status == 400

    def test_invalid_json_is_400(self):
        req = Request("POST", "/", {}, body=b"{nope")
        with pytest.raises(ProtocolError) as err:
            req.json()
        assert err.value.status == 400


class TestResponse:
    def test_render_has_length_and_connection(self):
        raw = Response(200, body=b"{}").render(keep_alive=True)
        assert b"Content-Length: 2" in raw
        assert b"Connection: keep-alive" in raw
        raw = Response(200, body=b"{}").render(keep_alive=False)
        assert b"Connection: close" in raw

    def test_json_response_bytes_are_deterministic(self):
        a = json_response(200, {"b": 1, "a": 2})
        b = json_response(200, {"a": 2, "b": 1})
        assert a.body == b.body == b'{"a":2,"b":1}'

    def test_extra_headers_rendered(self):
        raw = json_response(429, {}, headers={"Retry-After": "2"}).render()
        assert b"Retry-After: 2" in raw

    def test_body_round_trips(self):
        response = json_response(200, {"x": [1.5, None, "s"]})
        assert json.loads(response.body) == {"x": [1.5, None, "s"]}
