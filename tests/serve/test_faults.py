"""Serving fault drills: parsing, determinism, windows, store truncation."""

import shutil

import pytest

from repro.core.store import verify_store
from repro.core.reliability import ArtifactIntegrityError
from repro.serve import DrillPlan, DrillSpec, InjectedServeFault, truncate_shard


class TestDrillSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown drill kind"):
            DrillSpec("meltdown")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            DrillSpec("slow", rate=1.5)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            DrillSpec("error", first_n=0)

    def test_window_eligibility(self):
        spec = DrillSpec("error", first_n=3)
        assert spec.eligible(0)
        assert spec.eligible(2)
        assert not spec.eligible(3)


class TestDrillPlan:
    def test_from_string_round_trip(self):
        plan = DrillPlan.from_string("error:1.0@6,slow:0.25", seed=7)
        assert len(plan.specs) == 2
        assert plan.specs[0] == DrillSpec("error", rate=1.0, first_n=6)
        assert plan.specs[1] == DrillSpec("slow", rate=0.25)
        assert plan.seed == 7
        assert bool(plan)
        assert not DrillPlan()

    def test_bad_spec_text_rejected(self):
        with pytest.raises(ValueError, match="bad drill spec"):
            DrillPlan.from_string("error:often")

    def test_error_window_trips_then_heals(self):
        plan = DrillPlan.from_string("error:1.0@6")
        for index in range(6):
            with pytest.raises(InjectedServeFault):
                plan.check("query", index)
        for index in range(6, 20):
            plan.check("query", index)  # healed

    def test_slow_drill_yields_configured_stall(self):
        plan = DrillPlan.from_string("slow:1.0@2", slow_seconds=0.25)
        assert plan.delay_for("query", 0) == 0.25
        assert plan.delay_for("query", 1) == 0.25
        assert plan.delay_for("query", 2) == 0.0

    def test_decisions_are_seed_deterministic(self):
        a = DrillPlan.from_string("slow:0.5", seed=3)
        b = DrillPlan.from_string("slow:0.5", seed=3)
        decisions_a = [a.delay_for("query", i) > 0 for i in range(64)]
        decisions_b = [b.delay_for("query", i) > 0 for i in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seeds_diverge(self):
        a = DrillPlan.from_string("slow:0.5", seed=1)
        b = DrillPlan.from_string("slow:0.5", seed=2)
        assert [a.delay_for("q", i) for i in range(64)] != [
            b.delay_for("q", i) for i in range(64)
        ]

    def test_zero_rate_never_fires(self):
        plan = DrillPlan.from_string("error:0.0")
        for index in range(32):
            plan.check("query", index)


class TestTruncateShard:
    def test_truncation_breaks_verification(self, serve_store, tmp_path):
        damaged = tmp_path / "damaged.store"
        shutil.copytree(serve_store, damaged)
        rel = truncate_shard(damaged)
        assert (damaged / rel).exists()
        with pytest.raises(ArtifactIntegrityError):
            verify_store(damaged)
        # The original store is untouched.
        verify_store(serve_store)

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            truncate_shard(tmp_path)
