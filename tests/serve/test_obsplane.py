"""The live telemetry plane on the serve layer: /metrics exposition,
request tracing through the coalescer, the sampling profiler endpoint,
access logs, and byte-identity across every telemetry configuration."""

import asyncio
import io
import json

import pytest

import repro.obs as obs
from repro.obs.expo import EXPOSITION_CONTENT_TYPE
from repro.obs.validate import validate_prometheus_file, validate_tracez_file
from repro.serve import BenchServer, ClientConnection, ServerConfig
from repro.serve.http import _read_response, _render_request


async def start_server(bench, **overrides):
    config = ServerConfig(port=0, **overrides)
    server = BenchServer(bench, config)
    await server.start()
    task = asyncio.create_task(server.run())
    return server, task


async def stop_server(server, task):
    server.request_stop()
    await asyncio.wait_for(task, timeout=10.0)


def run(coro):
    return asyncio.run(coro)


async def raw_get(port, path, headers=None):
    """GET returning the raw body bytes (for non-JSON endpoints)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(_render_request("GET", path, b"", False, headers=headers))
    await writer.drain()
    status, resp_headers, body = await _read_response(reader)
    writer.close()
    return status, resp_headers, body


class TestMetricsEndpoint:
    def test_metrics_exposes_windowed_latency_quantiles(
        self, serve_bench, arch_strings, tmp_path
    ):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    for arch in arch_strings[:3]:
                        await conn.request(
                            "POST", "/query", {"arch": arch, "device": "a100"}
                        )
                return await raw_get(server.port, "/metrics")
            finally:
                await stop_server(server, task)

        status, headers, body = run(main())
        assert status == 200
        assert headers["content-type"] == EXPOSITION_CONTENT_TYPE
        text = body.decode("utf-8")
        # Windowed latency summary for /query with cumulative + 1m/5m views.
        assert "# TYPE anb_serve_latency_window_query summary" in text
        for quantile in ("0.5", "0.95", "0.99"):
            assert f'anb_serve_latency_window_query{{quantile="{quantile}"}}' in text
            assert (
                "anb_serve_latency_window_query"
                f'{{window="1m",quantile="{quantile}"}}'
            ) in text
        assert 'anb_serve_latency_window_query_count{window="5m"} 3' in text
        # Always-on gauges ride along.
        assert "anb_serve_generation 0" in text
        assert "anb_serve_uptime_seconds" in text
        assert "anb_serve_slo_availability_ratio 1" in text
        # 3 request spans + 3 single-item batch spans.
        assert "anb_serve_trace_total 6" in text
        assert "anb_serve_trace_retained 6" in text
        # The whole scrape passes the exposition grammar check.
        saved = tmp_path / "scrape.prom"
        saved.write_text(text)
        assert validate_prometheus_file(saved) > 0

    def test_metrics_works_with_telemetry_off(self, serve_bench, arch_strings):
        """The live plane is server-owned: it answers under --log-level off."""
        obs.reset()
        assert not obs.telemetry_active()

        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    await conn.request(
                        "POST", "/query", {"arch": arch_strings[0]}
                    )
                return await raw_get(server.port, "/metrics")
            finally:
                await stop_server(server, task)

        status, _, body = run(main())
        assert status == 200
        assert "anb_serve_latency_window_query" in body.decode()


class TestTracing:
    def test_query_spans_land_in_the_ring(self, serve_bench, arch_strings, tmp_path):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    await conn.request(
                        "POST", "/query", {"arch": arch_strings[0], "device": "a100"}
                    )
                    _, _, snap = await conn.request("GET", "/tracez")
                return snap
            finally:
                await stop_server(server, task)

        snap = run(main())
        names = [entry["name"] for entry in snap["entries"]]
        assert "serve.query" in names
        assert "serve.query_batch" in names
        saved = tmp_path / "tracez.json"
        saved.write_text(json.dumps(snap))
        assert validate_tracez_file(saved) == len(snap["entries"])

    def test_coalesced_batch_span_links_requests(self, serve_bench, arch_strings):
        """N merged queries: one batch span linked to all N request spans,
        and each request span links back to the batch span."""

        async def main():
            server, task = await start_server(
                serve_bench, max_batch=16, max_delay=0.05
            )
            try:
                conns = [
                    ClientConnection("127.0.0.1", server.port) for _ in range(6)
                ]
                await asyncio.gather(
                    *(
                        conn.request(
                            "POST", "/query", {"arch": arch, "device": "a100"}
                        )
                        for conn, arch in zip(conns, arch_strings)
                    )
                )
                stats = server.coalescer.stats()
                _, _, snap = await raw_get(server.port, "/tracez")
                for conn in conns:
                    await conn.close()
            finally:
                await stop_server(server, task)
            return stats, json.loads(snap)

        stats, snap = run(main())
        assert stats["flush_total"] < 6  # coalescing actually happened
        batches = [e for e in snap["entries"] if e["name"] == "serve.query_batch"]
        requests = [e for e in snap["entries"] if e["name"] == "serve.query"]
        assert len(requests) == 6
        assert len(batches) == stats["flush_total"]
        # Every request is linked from exactly one batch span, and links
        # back to that batch span.
        linked_from_batches = [s for b in batches for s in b["links"]]
        assert sorted(linked_from_batches) == sorted(
            r["span_id"] for r in requests
        )
        batch_ids = {b["span_id"] for b in batches}
        for request in requests:
            assert len(request["links"]) == 1
            assert request["links"][0] in batch_ids
        # Batch sizes in attrs agree with the link counts.
        for batch in batches:
            assert batch["attrs"]["batch_size"] == len(batch["links"])

    def test_tracez_404_when_disabled(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench, trace_ring=0)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    return await conn.request("GET", "/tracez")
            finally:
                await stop_server(server, task)

        status, _, body = run(main())
        assert status == 404
        assert body == {"error": "tracing disabled"}

    def test_sampled_out_requests_stay_out_of_the_ring(
        self, serve_bench, arch_strings
    ):
        async def main():
            server, task = await start_server(serve_bench, trace_sample=0.0)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    status, _, _ = await conn.request(
                        "POST", "/query", {"arch": arch_strings[0]}
                    )
                    _, _, snap = await conn.request("GET", "/tracez")
                return status, snap
            finally:
                await stop_server(server, task)

        status, snap = run(main())
        assert status == 200
        assert snap["entries"] == []

    def test_ring_is_bounded_and_counts_drops(self, serve_bench, arch_strings):
        async def main():
            server, task = await start_server(serve_bench, trace_ring=2)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    for _ in range(4):
                        await conn.request(
                            "POST", "/query", {"arch": arch_strings[0]}
                        )
                    _, _, snap = await conn.request("GET", "/tracez")
                return snap
            finally:
                await stop_server(server, task)

        snap = run(main())
        assert snap["capacity"] == 2
        assert len(snap["entries"]) == 2
        assert snap["dropped"] == snap["total"] - 2 > 0


class TestTraceparentEcho:
    TRACEPARENT = f"00-{'ab' * 16}-{'cd' * 8}-01"

    def test_incoming_traceparent_is_echoed_under_same_trace(
        self, serve_bench, arch_strings
    ):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    _, headers, _ = await conn.request(
                        "POST",
                        "/query",
                        {"arch": arch_strings[0]},
                        headers={"traceparent": self.TRACEPARENT},
                    )
                    _, _, snap = await conn.request("GET", "/tracez")
                return headers, snap
            finally:
                await stop_server(server, task)

        headers, snap = run(main())
        echoed = obs.parse_traceparent(headers["traceparent"])
        assert echoed is not None
        assert echoed.trace_id == "ab" * 16  # same trace
        assert echoed.span_id != "cd" * 8  # our span, not the caller's
        # The ring entry's parent is the caller's span.
        (entry,) = [e for e in snap["entries"] if e["name"] == "serve.query"]
        assert entry["trace_id"] == "ab" * 16
        assert entry["parent_id"] == "cd" * 8

    def test_malformed_traceparent_is_ignored(self, serve_bench, arch_strings):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    return await conn.request(
                        "POST",
                        "/query",
                        {"arch": arch_strings[0]},
                        headers={"traceparent": "garbage"},
                    )
            finally:
                await stop_server(server, task)

        status, headers, _ = run(main())
        assert status == 200
        assert "traceparent" not in headers

    def test_echo_is_identical_across_telemetry_and_sampling(
        self, serve_bench, arch_strings
    ):
        """The header handshake is a pure function of the request sequence:
        telemetry on/off and sampled/unsampled runs mint the same ids."""

        async def run_once(**overrides):
            server, task = await start_server(serve_bench, **overrides)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    out = []
                    for arch in arch_strings[:2]:
                        _, headers, _ = await conn.request(
                            "POST",
                            "/query",
                            {"arch": arch},
                            headers={"traceparent": self.TRACEPARENT},
                        )
                        out.append(headers["traceparent"])
                    return out
            finally:
                await stop_server(server, task)

        obs.reset()
        baseline = run(run_once())
        obs.configure(level="debug", json=True, stream=io.StringIO())
        try:
            with_obs = run(run_once())
        finally:
            obs.reset()
        sampled_out = run(run_once(trace_sample=0.0))
        no_ring = run(run_once(trace_ring=0))
        assert with_obs == baseline
        assert no_ring == baseline
        # Sampling flips only the flag byte, never the minted span ids.
        assert [h[:-3] for h in sampled_out] == [h[:-3] for h in baseline]


class TestProfileEndpoint:
    def test_profile_returns_collapsed_stacks(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                return await raw_get(
                    server.port, "/debug/profile?seconds=0.05"
                )
            finally:
                await stop_server(server, task)

        status, headers, body = run(main())
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        # The event loop blocks in select/epoll during the profile window,
        # so the sampler sees at least this process's main thread.
        for line in body.decode().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_profile_rejects_bad_seconds(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                bad = await raw_get(server.port, "/debug/profile?seconds=oops")
                zero = await raw_get(server.port, "/debug/profile?seconds=0")
            finally:
                await stop_server(server, task)
            return bad[0], zero[0]

        assert run(main()) == (400, 400)

    def test_profile_duration_is_clamped(self, serve_bench):
        async def main():
            server, task = await start_server(
                serve_bench, profile_max_seconds=0.05
            )
            try:
                loop = asyncio.get_running_loop()
                started = loop.time()
                status, _, _ = await raw_get(
                    server.port, "/debug/profile?seconds=3600"
                )
                elapsed = loop.time() - started
            finally:
                await stop_server(server, task)
            return status, elapsed

        status, elapsed = run(main())
        assert status == 200
        assert elapsed < 5.0  # clamped to 0.05s, not an hour

    def test_concurrent_profiles_conflict(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                first = asyncio.create_task(
                    raw_get(server.port, "/debug/profile?seconds=0.3")
                )
                await asyncio.sleep(0.1)
                conflict = await raw_get(
                    server.port, "/debug/profile?seconds=0.05"
                )
                ok = await first
            finally:
                await stop_server(server, task)
            return ok[0], conflict[0]

        assert run(main()) == (200, 409)


class TestAccessLog:
    def payloads(self, arch_strings):
        return [
            ("/query", {"arch": arch_strings[0], "device": "a100"}),
            ("/query", {"arch": "garbage"}),
        ]

    async def drive(self, serve_bench, arch_strings):
        server, task = await start_server(serve_bench)
        try:
            async with ClientConnection("127.0.0.1", server.port) as conn:
                for path, payload in self.payloads(arch_strings):
                    await conn.request("POST", path, payload)
        finally:
            await stop_server(server, task)

    def test_access_events_carry_request_fields(self, serve_bench, arch_strings):
        stream = io.StringIO()
        obs.configure(level="info", json=True, stream=stream)
        try:
            run(self.drive(serve_bench, arch_strings))
        finally:
            obs.reset()
        events = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if '"serve.access"' in line
        ]
        assert len(events) == 2
        ok, bad = events
        assert ok["method"] == "POST" and ok["path"] == "/query"
        assert ok["status"] == 200 and bad["status"] == 400
        assert ok["latency_ms"] >= 0
        assert ok["batch"] >= 1  # coalesced batch of one
        assert ok["cache"] in ("hit", "miss")
        assert len(ok["trace_id"]) == 32
        assert bad["cache"] == "-"  # rejected before the cache

    def test_silent_when_telemetry_off(self, serve_bench, arch_strings, capsys):
        obs.reset()
        run(self.drive(serve_bench, arch_strings))
        captured = capsys.readouterr()
        assert "serve.access" not in captured.out
        assert "serve.access" not in captured.err


class TestStatzInfo:
    def test_info_block_fields(self, serve_bench):
        async def main():
            server, task = await start_server(serve_bench)
            try:
                async with ClientConnection("127.0.0.1", server.port) as conn:
                    _, _, stats = await conn.request("GET", "/statz")
                return stats
            finally:
                await stop_server(server, task)

        info = run(main())["info"]
        import platform

        import repro

        assert info["generation"] == 0
        assert info["python"] == platform.python_version()
        assert info["repro"] == repro.__version__
        assert info["store_path"] is None  # in-memory bench, no artifact
        assert info["trace_ring"] == 256
        assert info["trace_sample"] == 1.0
        assert info["uptime_s"] >= 0


class TestByteIdentity:
    """Responses must be byte-identical no matter how the live plane is
    configured: tracing on, off, sampled out, or a profiler mid-flight."""

    def payloads(self, arch_strings):
        return [
            ("/query", {"arch": arch_strings[0], "device": "a100"}),
            ("/batch-query", {"archs": arch_strings[:3], "device": "a100"}),
            ("/pareto", {"archs": arch_strings[:6], "device": "a100"}),
            ("/query", {"arch": "bad"}),
        ]

    async def exchange(self, port, payloads, profile_inflight=False):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        profile = None
        if profile_inflight:
            profile = asyncio.create_task(
                raw_get(port, "/debug/profile?seconds=0.5")
            )
            await asyncio.sleep(0.05)  # profiler is running
        raw = []
        for path, payload in payloads:
            body = json.dumps(payload, sort_keys=True).encode()
            writer.write(_render_request("POST", path, body, True))
            await writer.drain()
            status, headers, data = await _read_response(reader)
            raw.append((status, tuple(sorted(headers.items())), data))
        writer.close()
        if profile is not None:
            status, _, _ = await profile
            assert status == 200
        return raw

    def run_once(self, serve_bench, arch_strings, profile=False, **overrides):
        async def main():
            server, task = await start_server(serve_bench, **overrides)
            try:
                return await self.exchange(
                    server.port,
                    self.payloads(arch_strings),
                    profile_inflight=profile,
                )
            finally:
                await stop_server(server, task)

        return run(main())

    def test_identical_across_all_plane_configurations(
        self, serve_bench, arch_strings
    ):
        obs.reset()
        baseline = self.run_once(serve_bench, arch_strings)
        variants = {
            "sampled_out": self.run_once(
                serve_bench, arch_strings, trace_sample=0.0
            ),
            "ring_disabled": self.run_once(
                serve_bench, arch_strings, trace_ring=0
            ),
            "profiler_running": self.run_once(
                serve_bench, arch_strings, profile=True
            ),
        }
        obs.configure(level="debug", json=True, stream=io.StringIO())
        try:
            variants["telemetry_on"] = self.run_once(serve_bench, arch_strings)
        finally:
            obs.reset()
        for name, got in variants.items():
            assert got == baseline, f"response bytes drifted under {name}"
