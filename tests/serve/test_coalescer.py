"""Micro-batch coalescing: grouping, flush policy, deadlines, fan-out."""

import asyncio

import pytest

from repro.core.reliability import Deadline, DeadlineExceeded
from repro.serve import Coalescer


class Runner:
    """Records every batched call; answers with len(arch) per item."""

    def __init__(self, fail_with: Exception | None = None):
        self.calls = []
        self.fail_with = fail_with

    async def __call__(self, device, metric, archs):
        self.calls.append((device, metric, list(archs)))
        if self.fail_with is not None:
            raise self.fail_with
        return [float(len(a)) for a in archs]


def run(coro):
    return asyncio.run(coro)


class TestValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError, match="max_batch"):
            Coalescer(Runner(), max_batch=0)
        with pytest.raises(ValueError, match="max_delay"):
            Coalescer(Runner(), max_delay=-1.0)


class TestCoalescing:
    def test_concurrent_queries_become_one_batch(self):
        runner = Runner()

        async def main():
            coal = Coalescer(runner, max_batch=16, max_delay=0.02)
            results = await asyncio.gather(
                *(coal.query(a, "a100", "throughput") for a in ("x", "yy", "zzz"))
            )
            return results

        results = run(main())
        assert results == [1.0, 2.0, 3.0]
        assert len(runner.calls) == 1
        assert runner.calls[0] == ("a100", "throughput", ["x", "yy", "zzz"])

    def test_groups_split_by_device_and_metric(self):
        runner = Runner()

        async def main():
            coal = Coalescer(runner, max_batch=16, max_delay=0.02)
            await asyncio.gather(
                coal.query("x", "a100", "throughput"),
                coal.query("y", "zcu102", "throughput"),
                coal.query("z", "a100", "latency"),
            )

        run(main())
        assert len(runner.calls) == 3
        keys = {(device, metric) for device, metric, _ in runner.calls}
        assert keys == {
            ("a100", "throughput"),
            ("zcu102", "throughput"),
            ("a100", "latency"),
        }

    def test_max_batch_flushes_without_waiting(self):
        runner = Runner()

        async def main():
            # max_delay is far longer than the test: only the size trigger
            # can flush, so results arriving proves it fired.
            coal = Coalescer(runner, max_batch=2, max_delay=60.0)
            return await asyncio.gather(
                coal.query("x", "a100", "throughput"),
                coal.query("yy", "a100", "throughput"),
            )

        assert run(main()) == [1.0, 2.0]
        assert len(runner.calls) == 1

    def test_stats_track_flushes_and_items(self):
        runner = Runner()

        async def main():
            coal = Coalescer(runner, max_batch=2, max_delay=60.0)
            await asyncio.gather(
                coal.query("x", "a100", "throughput"),
                coal.query("yy", "a100", "throughput"),
            )
            return coal.stats()

        stats = run(main())
        assert stats["flush_total"] == 1
        assert stats["items_total"] == 2
        assert stats["last_batch_size"] == 2

    def test_on_flush_observer_sees_batch_size(self):
        sizes = []
        runner = Runner()

        async def main():
            coal = Coalescer(
                runner, max_batch=3, max_delay=60.0, on_flush=sizes.append
            )
            await asyncio.gather(
                *(coal.query(a, "a100", "throughput") for a in "abc")
            )

        run(main())
        assert sizes == [3]


class TestDeadlines:
    def test_already_expired_deadline_rejected_at_submit(self):
        runner = Runner()

        async def main():
            coal = Coalescer(runner, max_delay=0.01)
            clock = lambda: 100.0  # noqa: E731
            dead = Deadline(expires_at=99.0, clock=clock)
            with pytest.raises(DeadlineExceeded):
                await coal.query("x", "a100", "throughput", dead)

        run(main())
        assert runner.calls == []

    def test_item_expiring_before_flush_gets_504_not_executed(self):
        runner = Runner()
        now = [0.0]

        async def main():
            coal = Coalescer(runner, max_batch=16, max_delay=0.01)
            deadline = Deadline(expires_at=0.5, clock=lambda: now[0])
            task = asyncio.create_task(
                coal.query("x", "a100", "throughput", deadline)
            )
            await asyncio.sleep(0)  # enqueue before the clock jumps
            now[0] = 1.0  # budget gone while waiting for batch-mates
            with pytest.raises(DeadlineExceeded):
                await task
            return coal.stats()

        stats = run(main())
        assert runner.calls == []  # never executed as a zombie
        assert stats["expired_total"] == 1

    def test_live_items_survive_an_expired_batchmate(self):
        runner = Runner()
        now = [0.0]

        async def main():
            coal = Coalescer(runner, max_batch=16, max_delay=0.01)
            doomed = Deadline(expires_at=0.5, clock=lambda: now[0])
            t1 = asyncio.create_task(
                coal.query("x", "a100", "throughput", doomed)
            )
            t2 = asyncio.create_task(coal.query("yy", "a100", "throughput"))
            await asyncio.sleep(0)
            now[0] = 1.0
            with pytest.raises(DeadlineExceeded):
                await t1
            assert await t2 == 2.0

        run(main())
        assert len(runner.calls) == 1
        assert runner.calls[0][2] == ["yy"]


class TestFailures:
    def test_runner_exception_fans_out_to_all_waiters(self):
        runner = Runner(fail_with=RuntimeError("surrogate down"))

        async def main():
            coal = Coalescer(runner, max_batch=2, max_delay=60.0)
            results = await asyncio.gather(
                coal.query("x", "a100", "throughput"),
                coal.query("y", "a100", "throughput"),
                return_exceptions=True,
            )
            return results

        results = run(main())
        assert len(results) == 2
        assert all(isinstance(r, RuntimeError) for r in results)

    def test_close_flushes_pending_groups(self):
        runner = Runner()

        async def main():
            coal = Coalescer(runner, max_batch=16, max_delay=60.0)
            task = asyncio.create_task(coal.query("x", "a100", "throughput"))
            await asyncio.sleep(0)
            await coal.close()
            return await asyncio.wait_for(task, timeout=1.0)

        assert run(main()) == 1.0
        assert len(runner.calls) == 1
