"""Unit tests for the search-space registry dispatch."""

import pytest

from repro.searchspace.mnasnet import ArchSpec
from repro.searchspace.model_builder import build_model
from repro.searchspace.proxyless import ProxylessSearchSpace
from repro.searchspace.registry import build_graph, structure_term


class TestDispatch:
    def test_mnasnet_builder_registered(self, some_archs):
        arch = some_archs[0]
        via_registry = build_graph(arch)
        direct = build_model(arch)
        assert len(via_registry) == len(direct)
        assert via_registry.output_shape == direct.output_shape

    def test_proxyless_builder_registered(self):
        arch = ProxylessSearchSpace(seed=0).sample()
        graph = build_graph(arch)
        assert graph.output_shape.channels == 1000

    def test_resolution_forwarded(self, some_archs):
        g = build_graph(some_archs[0], resolution=128)
        assert g.input_shape.height == 128

    def test_structure_terms_registered_per_type(self, some_archs):
        mnas_value = structure_term(some_archs[0])
        prox_value = structure_term(ProxylessSearchSpace(seed=0).sample())
        assert isinstance(mnas_value, float)
        assert isinstance(prox_value, float)

    def test_unregistered_type_rejected(self):
        with pytest.raises(TypeError, match="no builder registered"):
            build_graph(object())
        with pytest.raises(TypeError, match="no structure term"):
            structure_term(object())

    def test_both_specs_flow_through_trainer(self, some_archs):
        from repro.trainsim import P_STAR, SimulatedTrainer

        trainer = SimulatedTrainer()
        mnas = trainer.train(some_archs[0], P_STAR, 0).top1
        prox = trainer.train(ProxylessSearchSpace(seed=0).sample(), P_STAR, 0).top1
        assert 0.5 < mnas < 0.9
        assert 0.5 < prox < 0.9
