"""Unit tests for surrogate feature encodings."""

import numpy as np
import pytest

from repro.searchspace.features import ENCODINGS, FeatureEncoder
from repro.searchspace.mnasnet import NUM_STAGES


class TestWidths:
    def test_onehot_width(self):
        assert FeatureEncoder("onehot").num_features == NUM_STAGES * 10

    def test_integer_width(self):
        assert FeatureEncoder("integer").num_features == NUM_STAGES * 4

    def test_global_width(self):
        assert FeatureEncoder("onehot+global").num_features == NUM_STAGES * 10 + 4

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError, match="unknown encoding"):
            FeatureEncoder("fourier")


class TestEncodeOne:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_shape_and_dtype(self, encoding, some_archs):
        enc = FeatureEncoder(encoding)
        row = enc.encode_one(some_archs[0])
        assert row.shape == (enc.num_features,)
        assert row.dtype == np.float64

    def test_onehot_groups_sum_to_one(self, some_archs):
        enc = FeatureEncoder("onehot")
        row = enc.encode_one(some_archs[0])
        # 28 decision groups with sizes 3,2,3,2 repeating.
        sizes = [3, 2, 3, 2] * NUM_STAGES
        pos = 0
        for size in sizes:
            assert row[pos : pos + size].sum() == 1.0
            pos += size

    def test_integer_encoding_carries_raw_values(self, some_archs):
        arch = some_archs[0]
        row = FeatureEncoder("integer").encode_one(arch)
        assert row[0] == arch.expansion[0]
        assert row[1] == arch.kernel[0]
        assert row[2] == arch.layers[0]
        assert row[3] == arch.se[0]

    def test_global_features_finite_and_ordered(self, tiny_arch, big_arch):
        enc = FeatureEncoder("onehot+global")
        small = enc.encode_one(tiny_arch)[-4:]
        big = enc.encode_one(big_arch)[-4:]
        assert np.all(np.isfinite(small))
        assert big[0] > small[0]  # log flops
        assert big[1] > small[1]  # log params
        assert big[2] > small[2]  # depth
        assert big[3] > small[3]  # SE count


class TestEncodeBatch:
    def test_batch_matches_rows(self, some_archs):
        enc = FeatureEncoder("onehot")
        X = enc.encode(some_archs[:10])
        assert X.shape == (10, enc.num_features)
        for i, arch in enumerate(some_archs[:10]):
            assert np.array_equal(X[i], enc.encode_one(arch))

    def test_empty_batch(self):
        enc = FeatureEncoder("onehot")
        assert enc.encode([]).shape == (0, enc.num_features)

    def test_distinct_archs_distinct_rows(self, some_archs):
        enc = FeatureEncoder("onehot")
        X = enc.encode(some_archs[:20])
        assert len(np.unique(X, axis=0)) == 20

    def test_feature_names_align(self):
        for encoding in ENCODINGS:
            enc = FeatureEncoder(encoding)
            assert len(enc.feature_names()) == enc.num_features

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_vectorised_batch_matches_scalar_reference(self, encoding, some_archs):
        """The cached/vectorised batch path is bit-identical to encode_one."""
        enc = FeatureEncoder(encoding)
        X = enc.encode(some_archs[:30])
        ref = np.stack([enc.encode_one(a) for a in some_archs[:30]])
        assert (X == ref).all()

    def test_duplicate_archs_share_rows(self, some_archs):
        enc = FeatureEncoder("onehot")
        X = enc.encode([some_archs[0], some_archs[1], some_archs[0]])
        assert np.array_equal(X[0], X[2])


class TestEncoderCache:
    def test_repeat_encode_hits_cache(self, some_archs):
        enc = FeatureEncoder("onehot")
        first = enc.encode(some_archs[:10])
        info = enc.cache_info()
        assert info["misses"] == 10 and info["hits"] == 0
        second = enc.encode(some_archs[:10])
        info = enc.cache_info()
        assert info["hits"] == 10 and info["misses"] == 10
        assert (first == second).all()

    def test_partial_overlap_encodes_only_missing(self, some_archs):
        enc = FeatureEncoder("onehot")
        enc.encode(some_archs[:5])
        enc.encode(some_archs[:8])
        info = enc.cache_info()
        assert info["misses"] == 8
        assert info["hits"] == 5

    def test_lru_eviction_bounds_size(self, some_archs):
        enc = FeatureEncoder("onehot", cache_size=4)
        enc.encode(some_archs[:12])
        info = enc.cache_info()
        assert info["size"] == 4
        # Most recent survive; evicted archs re-encode with identical rows.
        again = enc.encode(some_archs[:12])
        assert (again == enc.encode(some_archs[:12])).all()

    def test_cache_disabled(self, some_archs):
        enc = FeatureEncoder("onehot", cache_size=0)
        X = enc.encode(some_archs[:6])
        assert enc.cache_info()["size"] == 0
        ref = np.stack([enc.encode_one(a) for a in some_archs[:6]])
        assert (X == ref).all()

    def test_cache_clear_resets_counters(self, some_archs):
        enc = FeatureEncoder("onehot")
        enc.encode(some_archs[:3])
        enc.cache_clear()
        info = enc.cache_info()
        assert info == {"hits": 0, "misses": 0, "size": 0, "capacity": enc.cache_size}

    def test_cached_rows_are_immutable(self, some_archs):
        enc = FeatureEncoder("onehot")
        enc.encode(some_archs[:1])
        row = enc._cache[some_archs[0]]
        assert not row.flags.writeable

    def test_negative_cache_size_rejected(self):
        with pytest.raises(ValueError, match="cache_size"):
            FeatureEncoder("onehot", cache_size=-1)

    def test_thread_safety_under_concurrent_encodes(self, some_archs):
        import concurrent.futures

        enc = FeatureEncoder("onehot", cache_size=32)
        ref = np.stack([enc.encode_one(a) for a in some_archs])

        def worker(offset: int) -> bool:
            sub = some_archs[offset : offset + 20]
            X = enc.encode(sub)
            return bool((X == ref[offset : offset + 20]).all())

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            assert all(pool.map(worker, [0, 10, 20, 30]))
