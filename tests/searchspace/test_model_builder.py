"""Unit tests for the arch-spec -> layer-graph builder."""

import pytest

from repro.nn.layers import Add, Conv2d, Dense, GlobalAvgPool, SqueezeExcite
from repro.searchspace.mnasnet import ArchSpec, STAGE_SETTINGS
from repro.searchspace.model_builder import build_model


@pytest.fixture(scope="module")
def minimal_model(tiny_arch):
    return build_model(tiny_arch)


class TestStructure:
    def test_graph_validates(self, some_archs):
        for arch in some_archs[:5]:
            build_model(arch).validate()

    def test_stem_head_classifier_present(self, minimal_model):
        assert "stem.conv" in minimal_model
        assert "head.conv" in minimal_model
        assert "head.pool" in minimal_model
        assert "head.fc" in minimal_model

    def test_output_is_classifier(self, minimal_model):
        assert minimal_model.output_shape.channels == 1000

    def test_custom_num_classes(self, tiny_arch):
        g = build_model(tiny_arch, num_classes=10)
        assert g.output_shape.channels == 10

    def test_layer_count_scales_with_depth(self, tiny_arch, big_arch):
        assert len(build_model(big_arch)) > len(build_model(tiny_arch))

    def test_expansion_1_skips_expand_conv(self, tiny_arch):
        g = build_model(tiny_arch)
        assert not any(l.name.endswith(".expand") for l in g)

    def test_expansion_6_has_expand_conv(self, big_arch):
        g = build_model(big_arch)
        expand = g["s1.l0.expand"]
        assert isinstance(expand, Conv2d)
        # Stage 1 input is stage 0 output (16 ch), expanded 6x.
        assert expand.output_shape.channels == 16 * 6

    def test_se_layers_present_iff_enabled(self, tiny_arch, big_arch):
        no_se = build_model(tiny_arch)
        with_se = build_model(big_arch)
        assert not any(isinstance(l, SqueezeExcite) for l in no_se)
        se_count = sum(1 for l in with_se if isinstance(l, SqueezeExcite))
        assert se_count == big_arch.total_layers

    def test_residuals_only_within_stage_repeats(self, big_arch):
        g = build_model(big_arch)
        adds = [l.name for l in g if isinstance(l, Add)]
        # First layer of each stage changes channels/stride: no residual.
        assert not any(name.startswith(f"s{i}.l0") for i in range(7) for name in adds)
        # Later repeats are residual.
        assert "s0.l1.residual" in adds

    def test_stage_output_channels_follow_skeleton(self, big_arch):
        g = build_model(big_arch)
        for i, setting in enumerate(STAGE_SETTINGS):
            last = big_arch.layers[i] - 1
            proj = g[f"s{i}.l{last}.project"]
            assert proj.output_shape.channels == setting.out_channels

    def test_dwconv_kernel_matches_spec(self):
        arch = ArchSpec((1,) * 7, (5,) * 7, (1,) * 7, (0,) * 7)
        g = build_model(arch)
        dw = g["s0.l0.dwconv"]
        assert dw.kernel_size == 5
        assert dw.is_depthwise


class TestResolution:
    def test_spatial_downsampling(self, tiny_arch):
        g = build_model(tiny_arch, resolution=224)
        # Stem /2 plus four stride-2 stages: 224 -> 7.
        assert g["head.conv"].output_shape.height == 7

    def test_rejects_tiny_resolution(self, tiny_arch):
        with pytest.raises(ValueError):
            build_model(tiny_arch, resolution=16)

    def test_alternate_resolution(self, tiny_arch):
        g = build_model(tiny_arch, resolution=128)
        assert g["head.conv"].output_shape.height == 4

    def test_pool_and_fc_shapes(self, tiny_arch):
        g = build_model(tiny_arch)
        assert isinstance(g["head.pool"], GlobalAvgPool)
        assert isinstance(g["head.fc"], Dense)
        assert g["head.fc"].input_shape.channels == 1280
