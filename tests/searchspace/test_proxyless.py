"""Unit tests for the ProxylessNAS-style search space."""

import numpy as np
import pytest

from repro.nn.counters import count_graph
from repro.nn.layers import SqueezeExcite
from repro.searchspace.proxyless import (
    NUM_LAYERS,
    PROXYLESS_OPS,
    STAGE_FIRST_LAYERS,
    ProxylessArch,
    ProxylessSearchSpace,
    build_proxyless,
    proxyless_structure_term,
)
from repro.searchspace.registry import build_graph


@pytest.fixture(scope="module")
def pspace():
    return ProxylessSearchSpace(seed=0)


@pytest.fixture(scope="module")
def parch(pspace):
    return pspace.sample(np.random.default_rng(1))


class TestSpec:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ProxylessArch(("k3e3",) * (NUM_LAYERS - 1))

    def test_unknown_op_rejected(self):
        ops = ["k3e3"] * NUM_LAYERS
        ops[3] = "k9e9"
        with pytest.raises(ValueError):
            ProxylessArch(tuple(ops))

    def test_stage_first_cannot_skip(self):
        ops = ["k3e3"] * NUM_LAYERS
        ops[STAGE_FIRST_LAYERS[1]] = "skip"
        with pytest.raises(ValueError, match="cannot be 'skip'"):
            ProxylessArch(tuple(ops))

    def test_string_roundtrip(self, parch):
        assert ProxylessArch.from_string(parch.to_string()) == parch

    def test_total_layers_excludes_skips(self):
        ops = ["k3e3"] * NUM_LAYERS
        ops[1] = "skip"
        ops[2] = "skip"
        arch = ProxylessArch(tuple(ops))
        assert arch.total_layers == NUM_LAYERS - 2

    def test_kernel_sizes(self):
        ops = ["k5e3"] * NUM_LAYERS
        ops[1] = "skip"
        arch = ProxylessArch(tuple(ops))
        assert set(arch.kernel_sizes()) == {5}
        assert len(arch.kernel_sizes()) == NUM_LAYERS - 1

    def test_stable_hash_differs_from_mnasnet(self, parch):
        assert parch.stable_hash() != parch.stable_hash("other")


class TestSpace:
    def test_size(self, pspace):
        assert pspace.size == 6**6 * 7**15

    def test_sample_valid_and_unique(self, pspace):
        batch = pspace.sample_batch(30, unique=True)
        assert len(set(batch)) == 30

    def test_mutate_single_edit(self, pspace, parch):
        rng = np.random.default_rng(2)
        for _ in range(20):
            child = pspace.mutate(parch, rng)
            diffs = sum(1 for a, b in zip(parch.ops, child.ops) if a != b)
            assert diffs == 1

    def test_neighbors_count(self, pspace, parch):
        neighbours = list(pspace.neighbors(parch))
        expected = sum(
            len(pspace._choices_at(i)) - 1 for i in range(NUM_LAYERS)
        )
        assert len(neighbours) == expected

    def test_decision_roundtrip(self, pspace, parch):
        decisions = pspace.arch_to_decisions(parch)
        assert pspace.arch_from_decisions(decisions) == parch

    def test_decision_sites_constrain_stage_firsts(self, pspace):
        sites = dict(pspace.decision_sites())
        for idx in STAGE_FIRST_LAYERS:
            assert "skip" not in sites[f"l{idx}"]


class TestBuilder:
    def test_builds_and_validates(self, parch):
        graph = build_proxyless(parch)
        graph.validate()
        assert graph.output_shape.channels == 1000

    def test_registry_dispatch(self, parch):
        assert len(build_graph(parch)) == len(build_proxyless(parch))

    def test_no_squeeze_excite(self, parch):
        assert not any(isinstance(l, SqueezeExcite) for l in build_proxyless(parch))

    def test_skip_reduces_flops(self):
        dense_ops = tuple("k3e6" for _ in range(NUM_LAYERS))
        sparse = list(dense_ops)
        for i in range(NUM_LAYERS):
            if i not in STAGE_FIRST_LAYERS:
                sparse[i] = "skip"
        dense_flops = count_graph(build_proxyless(ProxylessArch(dense_ops))).flops
        sparse_flops = count_graph(build_proxyless(ProxylessArch(tuple(sparse)))).flops
        assert sparse_flops < 0.6 * dense_flops

    def test_kernel7_supported(self):
        ops = tuple("k7e6" for _ in range(NUM_LAYERS))
        graph = build_proxyless(ProxylessArch(ops))
        dw = graph["s0.l0.dwconv"]
        assert dw.kernel_size == 7


class TestSimulation:
    def test_trainsim_works(self, parch):
        from repro.trainsim import P_STAR, SimulatedTrainer

        trainer = SimulatedTrainer()
        result = trainer.train(parch, P_STAR, seed=0)
        assert 0.5 < result.top1 < 0.9
        assert result.train_hours > 0

    def test_hwsim_works(self, parch):
        from repro.hwsim import MeasurementHarness, get_device

        for device in ("a100", "zcu102"):
            harness = MeasurementHarness(get_device(device))
            assert harness.measure_throughput(parch) > 0

    def test_structure_term_bounded_and_deterministic(self, pspace):
        for arch in pspace.sample_batch(10):
            value = proxyless_structure_term(arch)
            assert value == proxyless_structure_term(arch)
            assert abs(value) < 0.1

    def test_reinforce_runs_on_proxyless(self, pspace):
        from repro.optimizers import Reinforce

        result = Reinforce(space=pspace, seed=0).run(
            lambda a: float(a.total_layers), 40
        )
        assert result.num_evaluations == 40
