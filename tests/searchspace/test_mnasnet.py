"""Unit and property tests for the MnasNet search space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchspace.mnasnet import (
    ArchSpec,
    EXPANSION_CHOICES,
    KERNEL_CHOICES,
    LAYER_CHOICES,
    MnasNetSearchSpace,
    NUM_STAGES,
    SE_CHOICES,
)

arch_specs = st.builds(
    ArchSpec,
    expansion=st.tuples(*[st.sampled_from(EXPANSION_CHOICES)] * NUM_STAGES),
    kernel=st.tuples(*[st.sampled_from(KERNEL_CHOICES)] * NUM_STAGES),
    layers=st.tuples(*[st.sampled_from(LAYER_CHOICES)] * NUM_STAGES),
    se=st.tuples(*[st.sampled_from(SE_CHOICES)] * NUM_STAGES),
)


class TestArchSpecValidation:
    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError, match="7 entries"):
            ArchSpec((1,) * 6, (3,) * 7, (1,) * 7, (0,) * 7)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError, match="odd"):
            ArchSpec((1,) * 7, (4,) * 7, (1,) * 7, (0,) * 7)

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec((1,) * 7, (3,) * 7, (0,) * 7, (0,) * 7)

    def test_bad_se_flag_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec((1,) * 7, (3,) * 7, (1,) * 7, (2,) * 7)

    def test_out_of_space_values_allowed_for_baselines(self):
        # EfficientNet-B0's 4-layer stage is buildable even though the
        # searchable space caps layers at 3.
        spec = ArchSpec((1,) * 7, (3,) * 7, (1, 2, 2, 3, 3, 4, 1), (1,) * 7)
        assert spec.total_layers == 16


class TestSerialization:
    @given(arch_specs)
    @settings(max_examples=100, deadline=None)
    def test_string_roundtrip(self, arch):
        assert ArchSpec.from_string(arch.to_string()) == arch

    @given(arch_specs)
    @settings(max_examples=50, deadline=None)
    def test_dict_roundtrip(self, arch):
        assert ArchSpec.from_dict(arch.to_dict()) == arch

    def test_malformed_string_rejected(self):
        with pytest.raises(ValueError):
            ArchSpec.from_string("e1k3L1se0")  # only one stage
        with pytest.raises(ValueError):
            ArchSpec.from_string("|".join(["garbage"] * 7))

    def test_string_format(self):
        arch = ArchSpec((1,) * 7, (3,) * 7, (1,) * 7, (0,) * 7)
        assert arch.to_string() == "|".join(["e1k3L1se0"] * 7)


class TestStableHash:
    @given(arch_specs)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, arch):
        assert arch.stable_hash() == arch.stable_hash()

    def test_salt_changes_hash(self):
        arch = ArchSpec((1,) * 7, (3,) * 7, (1,) * 7, (0,) * 7)
        assert arch.stable_hash("a") != arch.stable_hash("b")

    def test_known_value_is_stable_across_processes(self):
        # Regression pin: blake2b-based hashing must never depend on
        # PYTHONHASHSEED.  If this fails, every hash-seeded simulation
        # output changes.
        arch = ArchSpec((1,) * 7, (3,) * 7, (1,) * 7, (0,) * 7)
        assert arch.stable_hash() == arch.stable_hash("")
        assert isinstance(arch.stable_hash(), int)


class TestSearchSpace:
    def test_size_matches_paper_order(self, space):
        assert space.size == 36**7
        assert 1e10 < space.size < 1e11

    def test_sample_is_member(self, space):
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert space.contains(space.sample(rng))

    def test_sampling_deterministic_with_seed(self):
        a = MnasNetSearchSpace(seed=7).sample()
        b = MnasNetSearchSpace(seed=7).sample()
        assert a == b

    def test_sample_batch_unique(self, space):
        batch = space.sample_batch(50, rng=np.random.default_rng(3), unique=True)
        assert len(set(batch)) == 50

    def test_sample_batch_unique_impossible(self):
        space = MnasNetSearchSpace(seed=0)
        with pytest.raises(ValueError):
            space.sample_batch(space.size + 1, unique=True)

    def test_mutate_changes_exactly_one_decision(self, space):
        rng = np.random.default_rng(5)
        arch = space.sample(rng)
        for _ in range(30):
            child = space.mutate(arch, rng)
            diffs = sum(
                1
                for field in ("expansion", "kernel", "layers", "se")
                for i in range(NUM_STAGES)
                if getattr(arch, field)[i] != getattr(child, field)[i]
            )
            assert diffs == 1
            assert space.contains(child)

    def test_neighbors_count_and_distance(self, space):
        arch = space.sample(np.random.default_rng(9))
        neighbours = list(space.neighbors(arch))
        # Per stage: 2 expansion + 1 kernel + 2 layers + 1 se alternatives.
        assert len(neighbours) == NUM_STAGES * 6
        assert len(set(neighbours)) == len(neighbours)
        assert arch not in neighbours

    def test_contains_rejects_out_of_space(self, space):
        b0_like = ArchSpec((1,) * 7, (3,) * 7, (1, 2, 2, 3, 3, 4, 1), (1,) * 7)
        assert not space.contains(b0_like)

    def test_enumerate_stage_configs(self, space):
        configs = list(space.enumerate_stage_configs())
        assert len(configs) == 36
        assert len(set(configs)) == 36
