"""Unit and property tests for the histogram tree engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.surrogates.tree import (
    DecisionTreeRegressor,
    FittedTree,
    GradientTreeBuilder,
    HistogramBinner,
    TreeEnsemblePredictor,
)


class TestHistogramBinner:
    def test_codes_within_bin_range(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 5))
        binner = HistogramBinner(max_bins=16).fit(X)
        codes = binner.transform(X)
        for j in range(5):
            assert codes[:, j].min() >= 0
            assert codes[:, j].max() < binner.num_bins(j)

    def test_constant_feature_single_bin(self):
        X = np.ones((50, 2))
        X[:, 1] = np.arange(50)
        binner = HistogramBinner(max_bins=8).fit(X)
        assert binner.num_bins(0) == 1
        assert binner.num_bins(1) > 1

    def test_few_unique_values_exact_thresholds(self):
        X = np.array([[0.0], [1.0], [0.0], [1.0]])
        binner = HistogramBinner(max_bins=64).fit(X)
        assert binner.num_bins(0) == 2
        codes = binner.transform(X)
        assert set(codes[:, 0]) == {0, 1}

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            HistogramBinner().transform(np.ones((2, 2)))

    def test_max_bins_validated(self):
        with pytest.raises(ValueError):
            HistogramBinner(max_bins=1)
        with pytest.raises(ValueError):
            HistogramBinner(max_bins=500)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(5, 60), st.integers(1, 4)),
            elements=st.floats(-100, 100),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_codes_order_consistent_with_values(self, X):
        """Within a feature, larger values never get smaller bin codes."""
        binner = HistogramBinner(max_bins=8).fit(X)
        codes = binner.transform(X)
        for j in range(X.shape[1]):
            order = np.argsort(X[:, j], kind="stable")
            sorted_codes = codes[order, j]
            assert np.all(np.diff(sorted_codes) >= 0)


class TestDecisionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert np.allclose(model.predict(X), y)

    def test_overfits_pure_data_with_enough_depth(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(64, 3))
        y = rng.normal(size=64)
        model = DecisionTreeRegressor(max_depth=30, min_samples_leaf=1).fit(X, y)
        assert np.abs(model.predict(X) - y).max() < 1e-9

    def test_max_depth_respected(self, xy_small):
        X, y = xy_small
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert model.tree_.max_depth <= 3

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        model = DecisionTreeRegressor(max_depth=20, min_samples_leaf=10).fit(X, y)
        # Route training points and count leaf populations.
        leaves = {}
        preds = model.predict(X)
        for value in preds:
            leaves[value] = leaves.get(value, 0) + 1
        assert min(leaves.values()) >= 10

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            DecisionTreeRegressor().predict(np.ones((2, 2)))

    def test_constant_target_gives_single_leaf(self):
        X = np.random.default_rng(3).normal(size=(50, 4))
        y = np.full(50, 2.5)
        model = DecisionTreeRegressor().fit(X, y)
        assert model.tree_.num_leaves == 1
        assert np.allclose(model.predict(X), 2.5)

    def test_validates_inputs(self):
        model = DecisionTreeRegressor()
        with pytest.raises(ValueError):
            model.fit(np.ones((3, 2)), np.ones(4))  # length mismatch
        with pytest.raises(ValueError):
            model.fit(np.ones(3), np.ones(3))  # X not 2-D
        with pytest.raises(ValueError):
            model.fit(np.array([[np.nan, 1.0]]), np.array([1.0]))


class TestGradientBuilder:
    def _build(self, X, g, h, **kwargs):
        binner = HistogramBinner(32).fit(X)
        builder = GradientTreeBuilder(binner, rng=np.random.default_rng(0), **kwargs)
        return builder.build(binner.transform(X), g, h)

    def test_leaf_values_follow_xgb_formula(self):
        # One split available; leaf value must be -G/(H+lambda).
        X = np.array([[0.0]] * 10 + [[1.0]] * 10)
        g = np.array([-1.0] * 10 + [1.0] * 10)
        h = np.ones(20)
        tree = self._build(X, g, h, reg_lambda=1.0, min_child_samples=1)
        preds = tree.predict(X)
        assert preds[0] == pytest.approx(10 / 11)  # -(-10)/(10+1)
        assert preds[-1] == pytest.approx(-10 / 11)

    def test_gamma_blocks_weak_splits(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 2))
        g = rng.normal(size=100) * 1e-3
        h = np.ones(100)
        tree = self._build(X, g, h, gamma=100.0)
        assert tree.num_leaves == 1

    def test_leafwise_respects_num_leaves(self, xy_small):
        X, y = xy_small
        binner = HistogramBinner(32).fit(X)
        builder = GradientTreeBuilder(
            binner,
            growth="leafwise",
            num_leaves=7,
            max_depth=None,
            rng=np.random.default_rng(0),
        )
        tree = builder.build(binner.transform(X), -y, np.ones_like(y))
        assert tree.num_leaves <= 7

    def test_invalid_growth_rejected(self, xy_small):
        X, _ = xy_small
        binner = HistogramBinner(32).fit(X)
        with pytest.raises(ValueError):
            GradientTreeBuilder(binner, growth="bestfirst")

    def test_colsample_validated(self, xy_small):
        X, _ = xy_small
        binner = HistogramBinner(32).fit(X)
        with pytest.raises(ValueError):
            GradientTreeBuilder(binner, colsample_bynode=0.0)

    def test_empty_build_rejected(self, xy_small):
        X, _ = xy_small
        binner = HistogramBinner(32).fit(X)
        builder = GradientTreeBuilder(binner)
        with pytest.raises(ValueError):
            builder.build(np.empty((0, X.shape[1]), dtype=np.int16), np.empty(0), np.empty(0))


class TestFittedTreeSerialization:
    def test_dict_roundtrip_preserves_predictions(self, xy_small):
        X, y = xy_small
        model = DecisionTreeRegressor(max_depth=6).fit(X, y)
        clone = FittedTree.from_dict(model.tree_.to_dict())
        assert np.array_equal(clone.predict(X), model.tree_.predict(X))


class TestEnsemblePredictor:
    def test_matches_per_tree_sum(self, xy_small):
        X, y = xy_small
        trees = [
            DecisionTreeRegressor(max_depth=d, seed=d).fit(X, y).tree_
            for d in (2, 4, 6)
        ]
        stacked = TreeEnsemblePredictor(trees)
        expected = sum(t.predict(X) for t in trees)
        assert np.allclose(stacked.predict_sum(X), expected)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TreeEnsemblePredictor([])

    def test_single_row_query(self, xy_small):
        X, y = xy_small
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y).tree_
        stacked = TreeEnsemblePredictor([tree, tree])
        single = stacked.predict_sum(X[:1])
        assert single.shape == (1,)
        assert single[0] == pytest.approx(2 * tree.predict(X[:1])[0])

    def test_fast_path_matches_batched_rows(self, xy_small):
        """predict_one_sum is bit-identical to the (n, n_trees) cursor path."""
        X, y = xy_small
        trees = [
            DecisionTreeRegressor(max_depth=d, seed=d).fit(X, y).tree_
            for d in (2, 3, 5)
        ]
        stacked = TreeEnsemblePredictor(trees)
        batched = stacked.predict_sum(X)  # n > 1: takes the 2-D cursor path
        ones = np.asarray([stacked.predict_one_sum(X[i]) for i in range(len(X))])
        assert (batched == ones).all()

    def test_fast_path_leaves_roots_untouched(self, xy_small):
        X, y = xy_small
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y).tree_
        stacked = TreeEnsemblePredictor([tree, tree, tree])
        roots_before = stacked._roots.copy()
        stacked.predict_one_sum(X[0])
        assert (stacked._roots == roots_before).all()
