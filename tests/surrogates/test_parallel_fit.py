"""Deterministic parallel ensemble fitting: any worker count, same bytes.

Forest trees draw their bootstrap rows and per-node feature subsets from
independent streams derived via ``SeedSequence(seed).spawn(n_estimators)``,
so fitting order and worker count cannot leak into the model.  These pins
hold the contract: a serial fit, every ``n_jobs`` fit, and the fitting-order
independence that underlies them all produce byte-identical ensembles.
"""

import numpy as np
import pytest

from repro.core.surrogate_fit import SurrogateFitter
from repro.surrogates.forest import RandomForestRegressor


@pytest.fixture(scope="module")
def data(xy_small):
    return xy_small


def _tree_bytes(model: RandomForestRegressor) -> list[bytes]:
    """Canonical byte rendering of every fitted tree."""
    out = []
    for tree in model.trees_:
        out.append(
            b"".join(
                np.ascontiguousarray(arr).tobytes()
                for arr in (
                    tree.feature,
                    tree.threshold,
                    tree.left,
                    tree.right,
                    tree.value,
                )
            )
        )
    return out


class TestNJobsSweep:
    @pytest.mark.parametrize("bootstrap", [True, False])
    def test_trees_byte_identical_for_every_worker_count(
        self, data, bootstrap
    ):
        X, y = data
        fits = {
            n_jobs: RandomForestRegressor(
                n_estimators=12,
                max_depth=10,
                bootstrap=bootstrap,
                seed=5,
                n_jobs=n_jobs,
            ).fit(X, y)
            for n_jobs in (1, 2, 4, None)
        }
        serial = _tree_bytes(fits[1])
        for n_jobs, model in fits.items():
            assert _tree_bytes(model) == serial, f"n_jobs={n_jobs} diverged"
            assert np.array_equal(model.predict(X), fits[1].predict(X))

    def test_predict_std_identical_across_workers(self, data):
        X, y = data
        serial = RandomForestRegressor(n_estimators=10, seed=2, n_jobs=1)
        threaded = RandomForestRegressor(n_estimators=10, seed=2, n_jobs=3)
        assert np.array_equal(
            serial.fit(X, y).predict_std(X), threaded.fit(X, y).predict_std(X)
        )

    def test_n_jobs_not_in_artifact_surface(self):
        """The saved parameter surface must not record wall-clock knobs."""
        for knob in ("n_jobs", "engine", "hist_mode"):
            assert knob not in RandomForestRegressor._PARAM_NAMES


class TestFitterParallelism:
    def test_fitter_rf_reports_identical_across_n_jobs(
        self, small_acc_dataset
    ):
        reports = [
            SurrogateFitter(n_jobs=n_jobs).fit(small_acc_dataset, "rf")
            for n_jobs in (1, 3)
        ]
        assert reports[0].r2 == reports[1].r2
        assert reports[0].kendall == reports[1].kendall
        assert reports[0].mae == reports[1].mae
