"""Golden pins for the histogram-subtraction engine and shared-traversal
predictors: every fast path must produce bit-identical trees/predictions."""

import numpy as np
import pytest

from repro.surrogates.forest import RandomForestRegressor
from repro.surrogates.gbdt import XGBRegressor
from repro.surrogates.tree import (
    GradientTreeBuilder,
    HistogramBinner,
    TreeEnsemblePredictor,
)


@pytest.fixture(scope="module")
def binned(xy_small):
    X, y = xy_small
    binner = HistogramBinner(max_bins=64).fit(X)
    return binner, binner.transform(X), y


def _build(binned, subtract, h=None, **kwargs):
    binner, codes, y = binned
    g = -np.asarray(y, dtype=np.float64)
    if h is None:
        h = np.ones_like(g)
    builder = GradientTreeBuilder(
        binner,
        rng=np.random.default_rng(123),
        hist_subtraction=subtract,
        **kwargs,
    )
    return builder.build(codes, g=g, h=h)


GROWTH_CONFIGS = [
    {"growth": "depthwise", "max_depth": 6},
    {"growth": "depthwise", "max_depth": 12},
    {"growth": "depthwise", "max_depth": None},
    {"growth": "leafwise", "max_depth": None, "num_leaves": 31},
    {"growth": "leafwise", "max_depth": 8, "num_leaves": 63},
]


class TestHistogramSubtractionGolden:
    @pytest.mark.parametrize(
        "config", GROWTH_CONFIGS, ids=[str(c) for c in GROWTH_CONFIGS]
    )
    def test_trees_identical_engine_on_and_off(self, binned, config):
        """The engine must change *nothing*: same splits, thresholds, values."""
        on = _build(binned, True, **config)
        off = _build(binned, False, **config)
        assert on.to_dict() == off.to_dict()

    def test_non_unit_hessians_identical(self, binned):
        _, codes, y = binned
        h = np.linspace(0.5, 2.0, len(y))
        on = _build(binned, True, h=h, max_depth=8)
        off = _build(binned, False, h=h, max_depth=8)
        assert on.to_dict() == off.to_dict()

    def test_engine_self_gates_on_feature_subsampling(self, binned):
        """colsample < 1 consumes rng per node; the engine must stand down
        and leave results identical to the legacy path."""
        on = _build(binned, True, colsample_bynode=0.5, max_depth=8)
        off = _build(binned, False, colsample_bynode=0.5, max_depth=8)
        assert on.to_dict() == off.to_dict()

    def test_wide_unbounded_tree_identical(self, binned):
        """Deque-based BFS (O(n) frontier pops) grows the same tree the old
        list-based queue did, even with no depth cap and tiny leaves."""
        on = _build(binned, True, max_depth=None, min_child_samples=2)
        off = _build(binned, False, max_depth=None, min_child_samples=2)
        assert on.to_dict() == off.to_dict()

    @pytest.mark.parametrize("module", ["gbdt", "forest"])
    def test_ensemble_fits_identical_engine_on_and_off(
        self, xy_small, monkeypatch, module
    ):
        """Whole-ensemble fits pin the engine: forcing hist_subtraction=False
        through the builder must leave every fitted tree byte-identical."""
        X, y = xy_small

        class _LegacyBuilder(GradientTreeBuilder):
            def __init__(self, *args, **kwargs):
                kwargs["hist_subtraction"] = False
                super().__init__(*args, **kwargs)

        def fit_model():
            if module == "gbdt":
                return XGBRegressor(n_estimators=15, max_depth=6, seed=7).fit(
                    X, y
                )
            return RandomForestRegressor(n_estimators=10, seed=3).fit(X, y)

        fast = fit_model()
        monkeypatch.setattr(
            f"repro.surrogates.{module}.GradientTreeBuilder", _LegacyBuilder
        )
        legacy = fit_model()
        fast_trees = fast.trees_ if module == "forest" else fast._trees
        legacy_trees = legacy.trees_ if module == "forest" else legacy._trees
        assert len(fast_trees) == len(legacy_trees)
        for ta, tb in zip(fast_trees, legacy_trees):
            assert ta.to_dict() == tb.to_dict()
        assert np.array_equal(fast.predict(X), legacy.predict(X))


class TestPerTreePrediction:
    @pytest.fixture(scope="class")
    def forest(self, xy_small):
        X, y = xy_small
        return RandomForestRegressor(n_estimators=25, seed=1).fit(X, y), X

    def test_predict_per_tree_matches_tree_loop(self, forest):
        model, X = forest
        predictor = TreeEnsemblePredictor(model.trees_)
        fast = predictor.predict_per_tree(X)
        slow = np.stack([t.predict(X) for t in model.trees_])
        assert fast.shape == slow.shape == (25, X.shape[0])
        assert np.array_equal(fast, slow)

    def test_per_tree_is_contiguous_tree_major(self, forest):
        model, X = forest
        fast = TreeEnsemblePredictor(model.trees_).predict_per_tree(X)
        assert fast.flags["C_CONTIGUOUS"]

    def test_predict_std_matches_legacy_loop(self, forest):
        """Satellite pin: predict_std must stay bit-identical to the old
        per-tree Python loop it replaced."""
        model, X = forest
        fast = model.predict_std(X)
        legacy = np.stack([t.predict(X) for t in model.trees_]).std(axis=0)
        assert np.array_equal(fast, legacy)

    def test_predict_std_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor().predict_std(np.zeros((1, 3)))

    def test_predict_consistent_with_per_tree_mean(self, forest):
        model, X = forest
        per_tree = TreeEnsemblePredictor(model.trees_).predict_per_tree(X)
        assert np.allclose(model.predict(X), per_tree.mean(axis=0))
