"""Golden pins for the histogram-subtraction engine and shared-traversal
predictors: every fast path must produce bit-identical trees/predictions."""

import numpy as np
import pytest

from repro.surrogates.forest import RandomForestRegressor
from repro.surrogates.gbdt import XGBRegressor
from repro.surrogates.tree import (
    _BINCOUNT_MIN_ROWS,
    GradientTreeBuilder,
    HistogramBinner,
    TreeEnsemblePredictor,
)


@pytest.fixture(scope="module")
def binned(xy_small):
    X, y = xy_small
    binner = HistogramBinner(max_bins=64).fit(X)
    return binner, binner.transform(X), y


def _build(binned, subtract, h=None, **kwargs):
    binner, codes, y = binned
    g = -np.asarray(y, dtype=np.float64)
    if h is None:
        h = np.ones_like(g)
    builder = GradientTreeBuilder(
        binner,
        rng=np.random.default_rng(123),
        hist_subtraction=subtract,
        **kwargs,
    )
    return builder.build(codes, g=g, h=h)


GROWTH_CONFIGS = [
    {"growth": "depthwise", "max_depth": 6},
    {"growth": "depthwise", "max_depth": 12},
    {"growth": "depthwise", "max_depth": None},
    {"growth": "leafwise", "max_depth": None, "num_leaves": 31},
    {"growth": "leafwise", "max_depth": 8, "num_leaves": 63},
]


class TestHistogramSubtractionGolden:
    @pytest.mark.parametrize(
        "config", GROWTH_CONFIGS, ids=[str(c) for c in GROWTH_CONFIGS]
    )
    def test_trees_identical_engine_on_and_off(self, binned, config):
        """The engine must change *nothing*: same splits, thresholds, values."""
        on = _build(binned, True, **config)
        off = _build(binned, False, **config)
        assert on.to_dict() == off.to_dict()

    def test_non_unit_hessians_identical(self, binned):
        _, codes, y = binned
        h = np.linspace(0.5, 2.0, len(y))
        on = _build(binned, True, h=h, max_depth=8)
        off = _build(binned, False, h=h, max_depth=8)
        assert on.to_dict() == off.to_dict()

    def test_engine_self_gates_on_feature_subsampling(self, binned):
        """colsample < 1 consumes rng per node; the engine must stand down
        and leave results identical to the legacy path."""
        on = _build(binned, True, colsample_bynode=0.5, max_depth=8)
        off = _build(binned, False, colsample_bynode=0.5, max_depth=8)
        assert on.to_dict() == off.to_dict()

    def test_wide_unbounded_tree_identical(self, binned):
        """Deque-based BFS (O(n) frontier pops) grows the same tree the old
        list-based queue did, even with no depth cap and tiny leaves."""
        on = _build(binned, True, max_depth=None, min_child_samples=2)
        off = _build(binned, False, max_depth=None, min_child_samples=2)
        assert on.to_dict() == off.to_dict()

    @pytest.mark.parametrize("module", ["gbdt", "forest"])
    def test_ensemble_fits_identical_engine_on_and_off(
        self, xy_small, monkeypatch, module
    ):
        """Whole-ensemble fits pin the engine: forcing hist_subtraction=False
        through the builder must leave every fitted tree byte-identical."""
        X, y = xy_small

        class _LegacyBuilder(GradientTreeBuilder):
            def __init__(self, *args, **kwargs):
                kwargs["hist_subtraction"] = False
                super().__init__(*args, **kwargs)

        def fit_model():
            if module == "gbdt":
                return XGBRegressor(n_estimators=15, max_depth=6, seed=7).fit(
                    X, y
                )
            return RandomForestRegressor(n_estimators=10, seed=3).fit(X, y)

        fast = fit_model()
        monkeypatch.setattr(
            f"repro.surrogates.{module}.GradientTreeBuilder", _LegacyBuilder
        )
        legacy = fit_model()
        fast_trees = fast.trees_ if module == "forest" else fast._trees
        legacy_trees = legacy.trees_ if module == "forest" else legacy._trees
        assert len(fast_trees) == len(legacy_trees)
        for ta, tb in zip(fast_trees, legacy_trees):
            assert ta.to_dict() == tb.to_dict()
        assert np.array_equal(fast.predict(X), legacy.predict(X))


class TestPartitionEngineGolden:
    """Tentpole pins: the histogram-native partition engine must grow
    bit-identical trees to the legacy per-node engine for every growth
    policy, sampling configuration and histogram kernel."""

    @pytest.mark.parametrize(
        "config", GROWTH_CONFIGS, ids=[str(c) for c in GROWTH_CONFIGS]
    )
    def test_trees_identical_partition_vs_legacy(self, binned, config):
        part = _build(binned, True, engine="partition", **config)
        legacy = _build(binned, True, engine="legacy", **config)
        assert part.to_dict() == legacy.to_dict()

    @pytest.mark.parametrize("growth", ["depthwise", "leafwise"])
    def test_feature_subsampling_identical(self, binned, growth):
        """colsample consumes rng per node; both engines must draw the
        same candidates in the same order."""
        config = {"growth": growth, "max_depth": 8}
        if growth == "leafwise":
            config["num_leaves"] = 31
        part = _build(binned, True, engine="partition",
                      colsample_bynode=0.5, **config)
        legacy = _build(binned, True, engine="legacy",
                        colsample_bynode=0.5, **config)
        assert part.to_dict() == legacy.to_dict()

    @pytest.mark.parametrize("growth", ["depthwise", "leafwise"])
    def test_non_unit_hessians_identical(self, binned, growth):
        _, codes, y = binned
        h = np.linspace(0.5, 2.0, len(y))
        config = {"growth": growth, "max_depth": 8}
        if growth == "leafwise":
            config["num_leaves"] = 31
        part = _build(binned, True, engine="partition", h=h, **config)
        legacy = _build(binned, True, engine="legacy", h=h, **config)
        assert part.to_dict() == legacy.to_dict()

    @pytest.mark.parametrize("mode", ["auto", "fused", "bincount", "repeat"])
    def test_every_hist_mode_matches_legacy(self, binned, mode):
        part = _build(binned, True, engine="partition", hist_mode=mode,
                      max_depth=10)
        legacy = _build(binned, True, engine="legacy", hist_mode="auto",
                        max_depth=10)
        assert part.to_dict() == legacy.to_dict()

    def test_all_binary_features_identical(self):
        """Pure one-hot matrices take the counts-from-staged-buffer path
        (no bincount at all); it must not change a single split."""
        rng = np.random.default_rng(42)
        X = (rng.uniform(size=(900, 24)) < 0.4).astype(np.float64)
        y = X @ rng.normal(size=24) + 0.05 * rng.standard_normal(900)
        binner = HistogramBinner(max_bins=64).fit(X)
        data = (binner, binner.transform(X), y)
        for config in GROWTH_CONFIGS:
            part = _build(data, True, engine="partition", **config)
            legacy = _build(data, True, engine="legacy", **config)
            assert part.to_dict() == legacy.to_dict()

    def test_subtraction_off_identical(self, binned):
        part = _build(binned, False, engine="partition", max_depth=10)
        legacy = _build(binned, False, engine="legacy", max_depth=10)
        assert part.to_dict() == legacy.to_dict()

    @pytest.mark.parametrize("family", ["xgb", "lgb", "rf"])
    def test_ensemble_fits_identical_across_engines(self, xy_small, family):
        """Whole-ensemble pins through the public engine kwarg."""
        from repro.surrogates import make_surrogate

        X, y = xy_small
        params = {
            "xgb": dict(n_estimators=12, max_depth=5, subsample=0.8,
                        colsample_bynode=0.7, seed=7),
            "lgb": dict(n_estimators=12, num_leaves=15, subsample=0.8,
                        colsample_bynode=0.7, seed=7),
            "rf": dict(n_estimators=8, max_depth=12, max_features=0.5,
                       seed=3),
        }[family]
        part = make_surrogate(family, engine="partition", **params).fit(X, y)
        legacy = make_surrogate(family, engine="legacy", **params).fit(X, y)
        part_trees = part.trees_ if family == "rf" else part._trees
        legacy_trees = legacy.trees_ if family == "rf" else legacy._trees
        assert len(part_trees) == len(legacy_trees)
        for ta, tb in zip(part_trees, legacy_trees):
            assert ta.to_dict() == tb.to_dict()
        assert np.array_equal(part.predict(X), legacy.predict(X))


class TestPerTreePrediction:
    @pytest.fixture(scope="class")
    def forest(self, xy_small):
        X, y = xy_small
        return RandomForestRegressor(n_estimators=25, seed=1).fit(X, y), X

    def test_predict_per_tree_matches_tree_loop(self, forest):
        model, X = forest
        predictor = TreeEnsemblePredictor(model.trees_)
        fast = predictor.predict_per_tree(X)
        slow = np.stack([t.predict(X) for t in model.trees_])
        assert fast.shape == slow.shape == (25, X.shape[0])
        assert np.array_equal(fast, slow)

    def test_per_tree_is_contiguous_tree_major(self, forest):
        model, X = forest
        fast = TreeEnsemblePredictor(model.trees_).predict_per_tree(X)
        assert fast.flags["C_CONTIGUOUS"]

    def test_predict_std_matches_legacy_loop(self, forest):
        """Satellite pin: predict_std must stay bit-identical to the old
        per-tree Python loop it replaced."""
        model, X = forest
        fast = model.predict_std(X)
        legacy = np.stack([t.predict(X) for t in model.trees_]).std(axis=0)
        assert np.array_equal(fast, legacy)

    def test_predict_std_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForestRegressor().predict_std(np.zeros((1, 3)))

    def test_predict_consistent_with_per_tree_mean(self, forest):
        model, X = forest
        per_tree = TreeEnsemblePredictor(model.trees_).predict_per_tree(X)
        assert np.allclose(model.predict(X), per_tree.mean(axis=0))


class TestBincountHistograms:
    """Satellite pins: every histogram kernel — adaptive ``auto``, forced
    per-feature ``bincount``, legacy flatten+``np.repeat`` — must grow
    bit-identical trees."""

    def test_resolve_hist_mode(self, binned):
        binner, _, _ = binned
        # Partition engine (default): the flat small-pass kernel is the
        # fused CSR single-pass; "repeat" aliases it as its successor.
        auto = GradientTreeBuilder(binner, hist_mode="auto")
        assert auto._resolve_hist_mode(_BINCOUNT_MIN_ROWS) == "bincount"
        assert auto._resolve_hist_mode(_BINCOUNT_MIN_ROWS - 1) == "fused"
        for forced in ("bincount", "fused"):
            builder = GradientTreeBuilder(binner, hist_mode=forced)
            assert builder._resolve_hist_mode(10**9) == forced
            assert builder._resolve_hist_mode(1) == forced
        aliased = GradientTreeBuilder(binner, hist_mode="repeat")
        assert aliased._resolve_hist_mode(1) == "fused"
        # Legacy engine keeps the historical flatten+repeat flat kernel.
        auto_legacy = GradientTreeBuilder(
            binner, hist_mode="auto", engine="legacy"
        )
        assert auto_legacy._resolve_hist_mode(_BINCOUNT_MIN_ROWS) == "bincount"
        assert auto_legacy._resolve_hist_mode(_BINCOUNT_MIN_ROWS - 1) == "repeat"
        for forced in ("bincount", "repeat"):
            builder = GradientTreeBuilder(
                binner, hist_mode=forced, engine="legacy"
            )
            assert builder._resolve_hist_mode(10**9) == forced
            assert builder._resolve_hist_mode(1) == forced

    def test_fused_mode_requires_partition_engine(self, binned):
        binner, _, _ = binned
        with pytest.raises(ValueError, match="fused"):
            GradientTreeBuilder(binner, hist_mode="fused", engine="legacy")

    def test_auto_mode_crosses_threshold_identical(self):
        """With rows well above ``_BINCOUNT_MIN_ROWS`` the auto kernel runs
        bincount on the tree's upper levels and the flat kernel on small
        deep nodes — and must still match both forced modes bit for bit."""
        rng = np.random.default_rng(11)
        n = 2 * _BINCOUNT_MIN_ROWS + 512
        X = rng.standard_normal((n, 12))
        y = X[:, 0] - 2.0 * X[:, 1] + 0.1 * rng.standard_normal(n)
        binner = HistogramBinner(max_bins=32).fit(X)
        data = (binner, binner.transform(X), y)
        trees = {
            mode: _build(data, True, hist_mode=mode, max_depth=9)
            for mode in ("auto", "bincount", "repeat")
        }
        assert trees["auto"].to_dict() == trees["repeat"].to_dict()
        assert trees["auto"].to_dict() == trees["bincount"].to_dict()

    @pytest.mark.parametrize(
        "config", GROWTH_CONFIGS, ids=[str(c) for c in GROWTH_CONFIGS]
    )
    def test_trees_identical_bincount_vs_repeat(self, binned, config):
        fast = _build(binned, True, hist_mode="bincount", **config)
        legacy = _build(binned, True, hist_mode="repeat", **config)
        assert fast.to_dict() == legacy.to_dict()

    def test_non_unit_hessians_identical(self, binned):
        _, codes, y = binned
        h = np.linspace(0.5, 2.0, len(y))
        fast = _build(binned, True, h=h, hist_mode="bincount", max_depth=8)
        legacy = _build(binned, True, h=h, hist_mode="repeat", max_depth=8)
        assert fast.to_dict() == legacy.to_dict()

    def test_feature_subsampling_identical(self, binned):
        fast = _build(
            binned, True, hist_mode="bincount", colsample_bynode=0.5, max_depth=8
        )
        legacy = _build(
            binned, True, hist_mode="repeat", colsample_bynode=0.5, max_depth=8
        )
        assert fast.to_dict() == legacy.to_dict()

    def test_unknown_hist_mode_rejected(self, binned):
        with pytest.raises(ValueError, match="hist_mode"):
            _build(binned, True, hist_mode="turbo")

    def test_ensemble_fits_identical_bincount_vs_repeat(
        self, xy_small, monkeypatch
    ):
        X, y = xy_small

        class _RepeatBuilder(GradientTreeBuilder):
            def __init__(self, *args, **kwargs):
                kwargs["hist_mode"] = "repeat"
                super().__init__(*args, **kwargs)

        fast = XGBRegressor(n_estimators=15, max_depth=6, seed=7).fit(X, y)
        monkeypatch.setattr(
            "repro.surrogates.gbdt.GradientTreeBuilder", _RepeatBuilder
        )
        legacy = XGBRegressor(n_estimators=15, max_depth=6, seed=7).fit(X, y)
        for ta, tb in zip(fast._trees, legacy._trees):
            assert ta.to_dict() == tb.to_dict()
        assert np.array_equal(fast.predict(X), legacy.predict(X))


def _depth_by_python_walk(tree) -> int:
    """Reference max_depth: the per-node Python loop the property replaced."""

    def walk(node: int, depth: int) -> int:
        if tree.feature[node] < 0:
            return depth
        return max(
            walk(int(tree.left[node]), depth + 1),
            walk(int(tree.right[node]), depth + 1),
        )

    return walk(0, 0)


class TestVectorisedMaxDepth:
    def test_matches_python_walk(self, xy_small):
        X, y = xy_small
        model = XGBRegressor(n_estimators=8, max_depth=None, seed=11).fit(X, y)
        for tree in model._trees:
            assert tree.max_depth == _depth_by_python_walk(tree)

    def test_stump_and_capped_trees(self, xy_small):
        X, y = xy_small
        for cap in (1, 3, 6):
            model = XGBRegressor(n_estimators=4, max_depth=cap, seed=5).fit(X, y)
            for tree in model._trees:
                assert tree.max_depth == _depth_by_python_walk(tree)
                assert tree.max_depth <= cap


class TestFlatArraysRoundTrip:
    @pytest.fixture(scope="class")
    def forest(self, xy_small):
        X, y = xy_small
        return RandomForestRegressor(n_estimators=12, seed=2).fit(X, y), X

    def test_predictor_as_from_arrays_identical(self, forest):
        model, X = forest
        predictor = TreeEnsemblePredictor(model.trees_)
        clone = TreeEnsemblePredictor.from_arrays(**predictor.as_arrays())
        assert clone.num_trees == predictor.num_trees
        assert np.array_equal(clone.predict_sum(X), predictor.predict_sum(X))

    def test_flat_tree_sequence_reproduces_trees(self, forest):
        from repro.surrogates.tree import FlatTreeSequence

        model, X = forest
        arrays = TreeEnsemblePredictor(model.trees_).as_arrays()
        seq = FlatTreeSequence(**arrays)
        assert len(seq) == len(model.trees_)
        for lazy, original in zip(seq, model.trees_):
            assert lazy.to_dict() == original.to_dict()
        # negative indexing and slicing behave like a list
        assert seq[-1].to_dict() == model.trees_[-1].to_dict()
        assert [t.num_nodes for t in seq[2:5]] == [
            t.num_nodes for t in model.trees_[2:5]
        ]
