"""Unit tests for the SVR solvers."""

import numpy as np
import pytest

from repro.core.metrics import r2_score
from repro.surrogates.svr import EpsilonSVR, NuSVR, linear_kernel, rbf_kernel


@pytest.fixture(scope="module")
def sine_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-3, 3, size=(300, 1))
    y = np.sin(X[:, 0]) + rng.normal(scale=0.05, size=300)
    return X[:240], y[:240], X[240:], y[240:]


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        A = np.random.default_rng(1).normal(size=(10, 3))
        K = rbf_kernel(A, A, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_positive(self):
        A = np.random.default_rng(2).normal(size=(15, 4))
        K = rbf_kernel(A, A, gamma=1.0)
        assert np.allclose(K, K.T)
        assert np.all(K > 0) and np.all(K <= 1 + 1e-12)

    def test_linear_kernel_is_gram(self):
        A = np.random.default_rng(3).normal(size=(5, 2))
        assert np.allclose(linear_kernel(A, A, gamma=0.0), A @ A.T)


class TestEpsilonSVR:
    def test_fits_sine(self, sine_data):
        Xtr, ytr, Xte, yte = sine_data
        model = EpsilonSVR(C=10.0, epsilon=0.05).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.95

    def test_linear_kernel_fits_linear_target(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(200, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
        model = EpsilonSVR(C=10.0, epsilon=0.01, kernel="linear").fit(X[:150], y[:150])
        assert r2_score(y[150:], model.predict(X[150:])) > 0.97

    def test_wide_tube_means_fewer_support_vectors(self, sine_data):
        Xtr, ytr, _, _ = sine_data
        narrow = EpsilonSVR(C=10.0, epsilon=0.01).fit(Xtr, ytr)
        wide = EpsilonSVR(C=10.0, epsilon=0.5).fit(Xtr, ytr)
        assert wide.support_fraction_ < narrow.support_fraction_

    def test_box_constraint_respected(self, sine_data):
        Xtr, ytr, _, _ = sine_data
        model = EpsilonSVR(C=0.5, epsilon=0.05).fit(Xtr, ytr)
        assert np.all(np.abs(model._beta) <= 0.5 + 1e-9)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            EpsilonSVR(kernel="poly")

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            EpsilonSVR().predict(np.ones((2, 2)))

    def test_feature_scaling_invariance(self, sine_data):
        """Standardisation makes the fit invariant to feature rescaling."""
        Xtr, ytr, Xte, _ = sine_data
        base = EpsilonSVR(C=5.0, epsilon=0.05).fit(Xtr, ytr).predict(Xte)
        scaled = (
            EpsilonSVR(C=5.0, epsilon=0.05)
            .fit(Xtr * 1000.0, ytr)
            .predict(Xte * 1000.0)
        )
        assert np.allclose(base, scaled, atol=1e-6)

    def test_max_samples_subsampling(self, sine_data):
        Xtr, ytr, Xte, yte = sine_data
        model = EpsilonSVR(C=10.0, epsilon=0.05, max_samples=100).fit(Xtr, ytr)
        assert len(model._beta) == 100
        assert r2_score(yte, model.predict(Xte)) > 0.9

    def test_gamma_scale_heuristic(self, sine_data):
        Xtr, ytr, _, _ = sine_data
        model = EpsilonSVR().fit(Xtr, ytr)
        assert model._gamma_value > 0


class TestNuSVR:
    def test_fits_sine(self, sine_data):
        Xtr, ytr, Xte, yte = sine_data
        model = NuSVR(C=10.0, nu=0.5).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.95

    def test_nu_controls_support_fraction(self, sine_data):
        Xtr, ytr, _, _ = sine_data
        sparse = NuSVR(C=10.0, nu=0.2, bisect_steps=12).fit(Xtr, ytr)
        dense = NuSVR(C=10.0, nu=0.9, bisect_steps=12).fit(Xtr, ytr)
        assert sparse.support_fraction_ < dense.support_fraction_
        assert abs(sparse.support_fraction_ - 0.2) < 0.15

    def test_epsilon_derived(self, sine_data):
        Xtr, ytr, _, _ = sine_data
        model = NuSVR(C=10.0, nu=0.5).fit(Xtr, ytr)
        assert model.epsilon_ is not None and model.epsilon_ >= 0

    def test_nu_validated(self):
        with pytest.raises(ValueError):
            NuSVR(nu=0.0)
        with pytest.raises(ValueError):
            NuSVR(nu=1.5)
