"""Unit tests for the Gaussian-process surrogate."""

import numpy as np
import pytest

from repro.core.metrics import r2_score
from repro.surrogates.gp import GPRegressor


@pytest.fixture(scope="module")
def smooth_data():
    rng = np.random.default_rng(0)
    X = rng.uniform(-2, 2, size=(250, 2))
    y = np.sin(X[:, 0]) * np.cos(X[:, 1]) + rng.normal(scale=0.02, size=250)
    return X[:200], y[:200], X[200:], y[200:]


class TestGP:
    def test_fits_smooth_function(self, smooth_data):
        Xtr, ytr, Xte, yte = smooth_data
        model = GPRegressor(noise=1e-3).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.95

    def test_interpolates_training_points_at_low_noise(self, smooth_data):
        Xtr, ytr, _, _ = smooth_data
        model = GPRegressor(noise=1e-6).fit(Xtr, ytr)
        assert np.abs(model.predict(Xtr) - ytr).max() < 0.05

    def test_uncertainty_lower_near_training_data(self, smooth_data):
        Xtr, ytr, _, _ = smooth_data
        model = GPRegressor(noise=1e-3).fit(Xtr, ytr)
        near = model.predict_std(Xtr[:20])
        far = model.predict_std(np.full((5, 2), 10.0))
        assert near.mean() < far.mean()

    def test_explicit_length_scale(self, smooth_data):
        Xtr, ytr, Xte, yte = smooth_data
        model = GPRegressor(length_scale=1.0, noise=1e-3).fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.8

    def test_max_samples_cap(self, smooth_data):
        Xtr, ytr, Xte, yte = smooth_data
        model = GPRegressor(noise=1e-3, max_samples=80).fit(Xtr, ytr)
        assert len(model._X) == 80
        assert r2_score(yte, model.predict(Xte)) > 0.8

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            GPRegressor(noise=0.0)
        with pytest.raises(ValueError):
            GPRegressor(length_scale=-1.0).fit(np.ones((5, 2)), np.ones(5))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            GPRegressor().predict(np.ones((2, 2)))

    def test_constant_target(self):
        X = np.random.default_rng(1).normal(size=(40, 3))
        y = np.full(40, 1.5)
        model = GPRegressor(noise=1e-4).fit(X, y)
        assert np.allclose(model.predict(X), 1.5, atol=1e-3)

    def test_works_on_accuracy_dataset(self, xy_small):
        X, y = xy_small
        model = GPRegressor(noise=1e-5).fit(X[:240], y[:240])
        pred = model.predict(X[240:])
        assert r2_score(y[240:], pred) > 0.5
