"""Serialization round-trips for every surrogate family."""

import json

import numpy as np
import pytest

from repro.surrogates import make_surrogate
from repro.surrogates.serialize import regressor_from_dict, regressor_to_dict
from repro.surrogates.transform import TransformedTargetRegressor
from repro.surrogates.tree import DecisionTreeRegressor


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(150, 6))
    y = X @ rng.normal(size=6) + rng.normal(scale=0.1, size=150)
    return X, y


FAMILY_PARAMS = {
    "xgb": dict(n_estimators=20, max_depth=3),
    "lgb": dict(n_estimators=20, num_leaves=8),
    "rf": dict(n_estimators=10, max_depth=6),
    "esvr": dict(C=5.0, epsilon=0.05),
    "nusvr": dict(C=5.0, nu=0.5),
    "gp": dict(noise=1e-3),
}


class TestRoundTrip:
    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_predictions_identical_after_roundtrip(self, family, data):
        X, y = data
        model = make_surrogate(family, **FAMILY_PARAMS[family]).fit(X, y)
        payload = regressor_to_dict(model)
        # Must survive an actual JSON encode/decode, not just dict copying.
        clone = regressor_from_dict(json.loads(json.dumps(payload)))
        assert np.allclose(clone.predict(X), model.predict(X))

    def test_decision_tree_roundtrip(self, data):
        X, y = data
        model = DecisionTreeRegressor(max_depth=5).fit(X, y)
        clone = regressor_from_dict(json.loads(json.dumps(regressor_to_dict(model))))
        assert np.array_equal(clone.predict(X), model.predict(X))

    def test_transform_wrapper_roundtrip(self, data):
        X, y = data
        y_pos = np.exp(y / 10)
        t, mu, sigma = TransformedTargetRegressor.transform_target(y_pos, log=True)
        inner = make_surrogate("xgb", n_estimators=15, max_depth=3).fit(X, t)
        model = TransformedTargetRegressor(inner, mu=mu, sigma=sigma, log=True)
        clone = regressor_from_dict(json.loads(json.dumps(regressor_to_dict(model))))
        assert np.allclose(clone.predict(X), model.predict(X))

    def test_unknown_kind_rejected(self):
        with pytest.raises(TypeError):
            regressor_from_dict({"kind": "MLP", "params": {}})

    def test_unfitted_svr_rejected(self):
        with pytest.raises(RuntimeError):
            regressor_to_dict(make_surrogate("esvr"))


class TestTransformedTarget:
    def test_log_transform_inverts(self, data):
        X, y = data
        y_pos = np.abs(y) + 1.0
        t, mu, sigma = TransformedTargetRegressor.transform_target(y_pos, log=True)
        recovered = np.exp(t * sigma + mu)
        assert np.allclose(recovered, y_pos)

    def test_log_transform_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TransformedTargetRegressor.transform_target(np.array([1.0, 0.0]), log=True)

    def test_refit_through_transform(self, data):
        X, y = data
        y_pos = np.abs(y) + 1.0
        model = TransformedTargetRegressor(
            make_surrogate("xgb", n_estimators=20, max_depth=3), log=True
        )
        model.fit(X, y_pos)
        pred = model.predict(X)
        assert np.all(pred > 0)
        assert np.corrcoef(pred, y_pos)[0, 1] > 0.8

    def test_sigma_validated(self, data):
        with pytest.raises(ValueError):
            TransformedTargetRegressor(make_surrogate("xgb"), sigma=0.0)
