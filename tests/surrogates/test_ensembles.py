"""Unit tests for random forest and gradient-boosting surrogates."""

import numpy as np
import pytest

from repro.core.metrics import r2_score
from repro.surrogates.forest import RandomForestRegressor
from repro.surrogates.gbdt import XGBRegressor
from repro.surrogates.lgb import LGBRegressor


@pytest.fixture(scope="module")
def friedman_like():
    """A standard nonlinear regression task."""
    rng = np.random.default_rng(7)
    X = rng.uniform(size=(600, 5))
    y = (
        10 * np.sin(np.pi * X[:, 0] * X[:, 1])
        + 20 * (X[:, 2] - 0.5) ** 2
        + 10 * X[:, 3]
        + 5 * X[:, 4]
        + rng.normal(scale=0.5, size=600)
    )
    return X[:450], y[:450], X[450:], y[450:]


class TestRandomForest:
    def test_fits_nonlinear_function(self, friedman_like):
        Xtr, ytr, Xte, yte = friedman_like
        model = RandomForestRegressor(n_estimators=30, max_depth=12, seed=0)
        model.fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.8

    def test_deterministic_given_seed(self, friedman_like):
        Xtr, ytr, Xte, _ = friedman_like
        a = RandomForestRegressor(n_estimators=10, seed=3).fit(Xtr, ytr).predict(Xte)
        b = RandomForestRegressor(n_estimators=10, seed=3).fit(Xtr, ytr).predict(Xte)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, friedman_like):
        Xtr, ytr, Xte, _ = friedman_like
        a = RandomForestRegressor(n_estimators=10, seed=1).fit(Xtr, ytr).predict(Xte)
        b = RandomForestRegressor(n_estimators=10, seed=2).fit(Xtr, ytr).predict(Xte)
        assert not np.array_equal(a, b)

    def test_predict_std_nonnegative_and_informative(self, friedman_like):
        Xtr, ytr, Xte, _ = friedman_like
        model = RandomForestRegressor(n_estimators=15, seed=0).fit(Xtr, ytr)
        std = model.predict_std(Xte)
        assert np.all(std >= 0)
        assert std.max() > 0

    def test_n_estimators_validated(self, friedman_like):
        Xtr, ytr, _, _ = friedman_like
        with pytest.raises(ValueError):
            RandomForestRegressor(n_estimators=0).fit(Xtr, ytr)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            RandomForestRegressor().predict(np.ones((2, 2)))

    def test_get_set_params_roundtrip(self):
        model = RandomForestRegressor(n_estimators=42)
        params = model.get_params()
        assert params["n_estimators"] == 42
        model.set_params(max_depth=5)
        assert model.max_depth == 5
        with pytest.raises(ValueError):
            model.set_params(nope=1)


class TestXGB:
    def test_beats_single_tree(self, friedman_like):
        Xtr, ytr, Xte, yte = friedman_like
        from repro.surrogates.tree import DecisionTreeRegressor

        tree = DecisionTreeRegressor(max_depth=6).fit(Xtr, ytr)
        boost = XGBRegressor(n_estimators=150, learning_rate=0.1, max_depth=4, seed=0)
        boost.fit(Xtr, ytr)
        assert r2_score(yte, boost.predict(Xte)) > r2_score(yte, tree.predict(Xte))

    def test_strong_fit_quality(self, friedman_like):
        Xtr, ytr, Xte, yte = friedman_like
        model = XGBRegressor(n_estimators=200, learning_rate=0.1, max_depth=4, seed=0)
        model.fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.90

    def test_more_rounds_reduce_train_error(self, friedman_like):
        Xtr, ytr, _, _ = friedman_like
        few = XGBRegressor(n_estimators=10, learning_rate=0.1, seed=0).fit(Xtr, ytr)
        many = XGBRegressor(n_estimators=100, learning_rate=0.1, seed=0).fit(Xtr, ytr)
        err_few = np.mean((few.predict(Xtr) - ytr) ** 2)
        err_many = np.mean((many.predict(Xtr) - ytr) ** 2)
        assert err_many < err_few

    def test_early_stopping_truncates(self, friedman_like):
        Xtr, ytr, _, _ = friedman_like
        model = XGBRegressor(
            n_estimators=400,
            learning_rate=0.3,
            max_depth=6,
            early_stopping_rounds=5,
            validation_fraction=0.2,
            seed=0,
        )
        model.fit(Xtr, ytr)
        assert model.n_trees_ < 400

    def test_subsample_validated(self, friedman_like):
        Xtr, ytr, _, _ = friedman_like
        with pytest.raises(ValueError):
            XGBRegressor(subsample=0.0).fit(Xtr, ytr)

    def test_deterministic(self, friedman_like):
        Xtr, ytr, Xte, _ = friedman_like
        kw = dict(n_estimators=30, subsample=0.8, colsample_bynode=0.7, seed=5)
        a = XGBRegressor(**kw).fit(Xtr, ytr).predict(Xte)
        b = XGBRegressor(**kw).fit(Xtr, ytr).predict(Xte)
        assert np.array_equal(a, b)

    def test_base_score_is_target_mean(self):
        X = np.random.default_rng(0).normal(size=(50, 2))
        y = np.full(50, 3.0)
        model = XGBRegressor(n_estimators=5, seed=0).fit(X, y)
        assert np.allclose(model.predict(X), 3.0)


class TestLGB:
    def test_leafwise_fit_quality(self, friedman_like):
        Xtr, ytr, Xte, yte = friedman_like
        model = LGBRegressor(n_estimators=200, learning_rate=0.1, num_leaves=31, seed=0)
        model.fit(Xtr, ytr)
        assert r2_score(yte, model.predict(Xte)) > 0.90

    def test_num_leaves_validated(self):
        with pytest.raises(ValueError):
            LGBRegressor(num_leaves=1)

    def test_param_names_include_num_leaves(self):
        assert "num_leaves" in LGBRegressor()._PARAM_NAMES

    def test_unbounded_depth_allowed(self, friedman_like):
        Xtr, ytr, Xte, _ = friedman_like
        model = LGBRegressor(n_estimators=10, num_leaves=8, max_depth=None, seed=0)
        model.fit(Xtr, ytr)
        assert model.predict(Xte).shape == (len(Xte),)
