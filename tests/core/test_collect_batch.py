"""Collection-layer equivalence: batch kernels on vs off, faults, resume.

The batch path precomputes clean values for all journal-pending keys in one
vectorised pass (``prepare`` hook of ``run_tasks``) and replays faults
per-task, so every reliability feature — retries, quarantine, journaling,
graceful degradation — must behave exactly as on the scalar path, down to
byte-identical artifacts.
"""

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.core.dataset import (
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
)
from repro.core.reliability import (
    FaultPlan,
    InjectedCrash,
    Journal,
    RetryPolicy,
)
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def archs():
    return sample_dataset_archs(32, seed=41)


def _no_sleep_policy(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts=attempts, sleep=lambda s: None)


class TestPlainEquivalence:
    @pytest.mark.parametrize("n_jobs", [1, 3])
    def test_accuracy_batch_matches_scalar(self, archs, n_jobs):
        scalar = collect_accuracy_dataset(archs, P_STAR, batch=False)
        batched = collect_accuracy_dataset(
            archs, P_STAR, batch=True, n_jobs=n_jobs
        )
        assert batched.archs == scalar.archs
        assert np.array_equal(batched.values, scalar.values)

    @pytest.mark.parametrize(
        "device,metric",
        [("a100", "throughput"), ("zcu102", "latency"), ("tpuv3", "throughput")],
    )
    def test_device_batch_matches_scalar(self, archs, device, metric):
        scalar = collect_device_dataset(archs, device, metric, batch=False)
        batched = collect_device_dataset(
            archs, device, metric, batch=True, n_jobs=2
        )
        assert np.array_equal(batched.values, scalar.values)

    def test_artifacts_byte_identical(self, archs, tmp_path):
        off, on = tmp_path / "off.json", tmp_path / "on.json"
        collect_accuracy_dataset(archs, P_STAR, batch=False).to_json(off)
        collect_accuracy_dataset(archs, P_STAR, batch=True).to_json(on)
        assert off.read_bytes() == on.read_bytes()


class TestFaultEquivalence:
    def test_retry_and_quarantine_match_scalar(self, archs):
        def run(batch):
            return collect_accuracy_dataset(
                archs,
                P_STAR,
                fault_plan=FaultPlan.from_string("nan:0.3,timeout:0.2", seed=6),
                retry_policy=_no_sleep_policy(),
                min_success_fraction=0.5,
                batch=batch,
            )

        scalar, batched = run(False), run(True)
        assert batched.archs == scalar.archs
        assert np.array_equal(batched.values, scalar.values)
        scalar_q = [f.key for f in scalar.quarantine] if "quarantine" in scalar.meta else []
        batched_q = [f.key for f in batched.quarantine] if "quarantine" in batched.meta else []
        assert batched_q == scalar_q

    def test_device_spike_faults_match_scalar(self, archs):
        def run(batch):
            return collect_device_dataset(
                archs,
                "vck190",
                "latency",
                fault_plan=FaultPlan.from_string("spike:0.4", seed=3),
                retry_policy=_no_sleep_policy(),
                min_success_fraction=0.5,
                batch=batch,
            )

        scalar, batched = run(False), run(True)
        assert np.array_equal(batched.values, scalar.values)


class TestJournalResumeEquivalence:
    @pytest.mark.parametrize("batch", [False, True], ids=["scalar", "batch"])
    def test_kill_and_resume_byte_identical(self, archs, tmp_path, batch):
        clean = collect_accuracy_dataset(archs, P_STAR, batch=batch)
        journal = tmp_path / f"acc-{batch}.jsonl"
        crash = FaultPlan.crash_on([archs[len(archs) // 2].to_string()])
        with pytest.raises(InjectedCrash):
            collect_accuracy_dataset(
                archs,
                P_STAR,
                fault_plan=crash,
                retry_policy=_no_sleep_policy(attempts=1),
                journal=journal,
                batch=batch,
            )
        done = Journal(journal, dataset="ANB-Acc").replay()
        assert 0 < len(done) < len(archs)

        resumed = collect_accuracy_dataset(
            archs, P_STAR, journal=journal, resume=True, batch=batch
        )
        assert np.array_equal(resumed.values, clean.values)
        clean_path = tmp_path / f"clean-{batch}.json"
        resumed_path = tmp_path / f"resumed-{batch}.json"
        clean.to_json(clean_path)
        resumed.to_json(resumed_path)
        assert clean_path.read_bytes() == resumed_path.read_bytes()

    def test_journals_identical_across_paths(self, archs, tmp_path):
        """The write-ahead journal records the same values batch on or off."""
        journals = {}
        for batch in (False, True):
            journal = tmp_path / f"j-{batch}.jsonl"
            collect_accuracy_dataset(archs, P_STAR, journal=journal, batch=batch)
            # Strip the header line (it embeds a wall-clock timestamp).
            journals[batch] = journal.read_bytes().splitlines()[1:]
        assert journals[False] == journals[True]

    def test_scalar_journal_resumes_under_batch(self, archs, tmp_path):
        """A journal written by the scalar path is resumable by the batch
        path (and vice versa) because both record identical values."""
        journal = tmp_path / "cross.jsonl"
        crash = FaultPlan.crash_on([archs[20].to_string()])
        with pytest.raises(InjectedCrash):
            collect_accuracy_dataset(
                archs,
                P_STAR,
                fault_plan=crash,
                retry_policy=_no_sleep_policy(attempts=1),
                journal=journal,
                batch=False,
            )
        resumed = collect_accuracy_dataset(
            archs, P_STAR, journal=journal, resume=True, batch=True
        )
        clean = collect_accuracy_dataset(archs, P_STAR, batch=False)
        assert np.array_equal(resumed.values, clean.values)


class TestBuildEquivalence:
    def test_build_artifacts_byte_identical(self, tmp_path):
        outputs = {}
        for batch in (False, True):
            bench, _ = AccelNASBench.build(
                P_STAR,
                num_archs=60,
                devices={"zcu102": ("latency",)},
                sample_seed=4,
                batch=batch,
            )
            out = tmp_path / f"bench-{batch}.json"
            bench.save(out)
            outputs[batch] = out.read_bytes()
        assert outputs[False] == outputs[True]
