"""Fault-tolerant collection: retries, quarantine, NaN guard, degradation gate."""

import numpy as np
import pytest

from repro.core.dataset import (
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
)
from repro.core.reliability import (
    CollectionError,
    FailureRecord,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def archs():
    return sample_dataset_archs(16, seed=21)


def _no_sleep_policy(attempts: int = 3) -> RetryPolicy:
    return RetryPolicy(max_attempts=attempts, sleep=lambda s: None)


class TestNaNGuard:
    def test_persistent_nan_is_gated_by_default(self, archs):
        """Satellite: NaN from the simulator must never reach a dataset."""
        victim = archs[4].to_string()
        plan = FaultPlan([FaultSpec("nan", keys=[victim])])
        with pytest.raises(CollectionError) as info:
            collect_accuracy_dataset(archs, P_STAR, fault_plan=plan)
        (failure,) = info.value.failures
        assert failure.key == victim
        assert failure.error == "NonFiniteResult"

    def test_nan_quarantined_with_graceful_degradation(self, archs):
        victim = archs[4].to_string()
        plan = FaultPlan([FaultSpec("nan", keys=[victim])])
        ds = collect_accuracy_dataset(
            archs, P_STAR, fault_plan=plan, min_success_fraction=0.9
        )
        assert len(ds) == len(archs) - 1
        assert victim not in {a.to_string() for a in ds.archs}
        assert np.all(np.isfinite(ds.values))
        assert [f.key for f in ds.quarantine] == [victim]
        assert isinstance(ds.quarantine[0], FailureRecord)

    def test_inf_guarded_on_device_collection(self, archs):
        victim = archs[0].to_string()
        plan = FaultPlan([FaultSpec("inf", keys=[victim])])
        ds = collect_device_dataset(
            archs,
            "a100",
            "throughput",
            fault_plan=plan,
            min_success_fraction=0.5,
        )
        assert victim not in {a.to_string() for a in ds.archs}
        assert np.all(np.isfinite(ds.values))


class TestRetryQuarantine:
    def test_transient_timeout_healed_by_retry(self, archs):
        """A fault limited to attempt 0 must leave values bit-identical."""
        clean = collect_accuracy_dataset(archs, P_STAR)
        plan = FaultPlan([FaultSpec("timeout", rate=1.0, max_attempt=1)])
        ds = collect_accuracy_dataset(
            archs,
            P_STAR,
            fault_plan=plan,
            retry_policy=_no_sleep_policy(attempts=2),
        )
        assert len(ds) == len(clean)
        assert np.array_equal(ds.values, clean.values)
        assert "quarantine" not in ds.meta

    def test_exhausted_retries_quarantine(self, archs):
        victim = archs[7].to_string()
        plan = FaultPlan([FaultSpec("timeout", keys=[victim])])
        ds = collect_accuracy_dataset(
            archs,
            P_STAR,
            fault_plan=plan,
            retry_policy=_no_sleep_policy(attempts=3),
            min_success_fraction=0.5,
        )
        assert [f.key for f in ds.quarantine] == [victim]
        assert ds.quarantine[0].attempts == 3
        assert ds.quarantine[0].error == "MeasurementTimeout"

    def test_backoff_sequence_is_recorded_not_slept(self, archs):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=3,
            base_delay=0.1,
            backoff=2.0,
            jitter=0.0,
            sleep=sleeps.append,
        )
        victim = archs[2].to_string()
        plan = FaultPlan([FaultSpec("timeout", keys=[victim])])
        collect_accuracy_dataset(
            archs,
            P_STAR,
            fault_plan=plan,
            retry_policy=policy,
            min_success_fraction=0.5,
        )
        assert sleeps == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_min_success_fraction_gate(self, archs):
        bad = frozenset(a.to_string() for a in archs[:8])  # half the sample
        plan = FaultPlan([FaultSpec("timeout", keys=bad)])
        with pytest.raises(CollectionError, match="success fraction"):
            collect_accuracy_dataset(
                archs, P_STAR, fault_plan=plan, min_success_fraction=0.75
            )
        ds = collect_accuracy_dataset(
            archs, P_STAR, fault_plan=plan, min_success_fraction=0.5
        )
        assert len(ds) == 8

    def test_quarantine_identical_serial_and_parallel(self, archs):
        victim = archs[3].to_string()
        plan = FaultPlan([FaultSpec("nan", keys=[victim])])
        serial = collect_accuracy_dataset(
            archs, P_STAR, fault_plan=plan, min_success_fraction=0.5, n_jobs=1
        )
        parallel = collect_accuracy_dataset(
            archs, P_STAR, fault_plan=plan, min_success_fraction=0.5, n_jobs=4
        )
        assert serial.archs == parallel.archs
        assert np.array_equal(serial.values, parallel.values)
        assert serial.meta == parallel.meta

    def test_faultless_reliability_path_matches_plain(self, archs):
        """Retry/journal plumbing must not perturb a healthy collection."""
        plain = collect_device_dataset(archs, "tpuv3", "throughput")
        tolerant = collect_device_dataset(
            archs,
            "tpuv3",
            "throughput",
            retry_policy=_no_sleep_policy(),
            min_success_fraction=0.5,
        )
        assert np.array_equal(plain.values, tolerant.values)
        assert plain.meta == tolerant.meta
