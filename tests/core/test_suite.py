"""Unit tests for the release-suite tooling."""

import json

import pytest

from repro.core.suite import BENCHMARK_NAME, MANIFEST_NAME, BenchmarkSuite
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def suite():
    return BenchmarkSuite.collect(
        P_STAR,
        num_archs=150,
        devices={"a100": ("throughput",), "zcu102": ("latency",)},
        sample_seed=4,
    )


class TestCollect:
    def test_datasets_present(self, suite):
        assert set(suite.datasets) == {"ANB-Acc", "ANB-a100-Thr", "ANB-zcu102-Lat"}

    def test_reports_match_targets(self, suite):
        assert [r.dataset for r in suite.reports] == [
            "ANB-Acc",
            "ANB-a100-Thr",
            "ANB-zcu102-Lat",
        ]

    def test_manifest_provenance(self, suite):
        assert suite.manifest["num_archs"] == 150
        assert suite.manifest["scheme"] == P_STAR.to_dict()
        assert len(suite.manifest["fit_reports"]) == 3

    def test_benchmark_queryable(self, suite, some_archs):
        assert suite.benchmark.query_accuracy(some_archs[0]) > 0.5


class TestSaveLoad:
    def test_release_layout(self, suite, tmp_path):
        out = suite.save(tmp_path / "release")
        names = {p.name for p in out.iterdir()}
        assert MANIFEST_NAME in names
        assert BENCHMARK_NAME in names
        assert "ANB-Acc.json" in names
        manifest = json.loads((out / MANIFEST_NAME).read_text())
        assert manifest == suite.manifest

    def test_roundtrip(self, suite, tmp_path, some_archs):
        out = suite.save(tmp_path / "release")
        loaded = BenchmarkSuite.load(out)
        assert set(loaded.datasets) == set(suite.datasets)
        assert loaded.manifest == suite.manifest
        arch = some_archs[0]
        assert loaded.benchmark.query_accuracy(arch) == pytest.approx(
            suite.benchmark.query_accuracy(arch)
        )
        acc = loaded.datasets["ANB-Acc"]
        assert acc.archs == suite.datasets["ANB-Acc"].archs
