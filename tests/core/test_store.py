"""The sharded columnar artifact store: round trips, laziness, integrity.

The acceptance bar for the storage refactor: columnar-loaded benchmarks
must answer ``query``/``query_batch`` byte-identically to JSON-loaded ones,
every surrogate family must survive the columnar codec through real disk
shards, and every corruption mode must surface as an
:class:`ArtifactIntegrityError` naming the path and the reason.
"""

import json

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.core.dataset import BenchmarkDataset, sample_dataset_archs
from repro.core.reliability import ArtifactIntegrityError, write_artifact
from repro.core import store
from repro.surrogates import make_surrogate
from repro.surrogates.serialize import (
    ARRAY_DTYPES,
    regressor_from_arrays,
    regressor_to_arrays,
)
from repro.surrogates.tree import DecisionTreeRegressor
from repro.trainsim.schemes import P_STAR

FAMILY_PARAMS = {
    "xgb": dict(n_estimators=20, max_depth=3),
    "lgb": dict(n_estimators=20, num_leaves=8),
    "rf": dict(n_estimators=10, max_depth=6),
    "esvr": dict(C=5.0, epsilon=0.05),
    "nusvr": dict(C=5.0, nu=0.5),
    "gp": dict(noise=1e-3),
}


@pytest.fixture(scope="module")
def bench():
    bench, _ = AccelNASBench.build(
        P_STAR,
        num_archs=80,
        devices={"a100": ("throughput",), "zcu102": ("throughput", "latency")},
        sample_seed=3,
    )
    return bench


@pytest.fixture(scope="module")
def saved(bench, tmp_path_factory):
    """The same benchmark saved both ways."""
    root = tmp_path_factory.mktemp("stores")
    json_path = root / "bench.json"
    store_path = root / "bench.store"
    bench.save(json_path)
    bench.save(store_path, format="columnar")
    return json_path, store_path


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.uniform(size=(150, 6))
    y = X @ rng.normal(size=6) + rng.normal(scale=0.1, size=150)
    return X, y


def _roundtrip_via_disk(model, tmp_path):
    """The columnar codec through real shards: write, remap, reconstruct."""
    spec, arrays = regressor_to_arrays(model)
    entries = {
        role: store.write_shard(tmp_path, f"shards/{role}.bin", array)
        for role, array in arrays.items()
    }
    mapped = {
        role: store.map_shard(
            tmp_path, f"shards/{role}.bin", entry, expect_dtype=ARRAY_DTYPES[role]
        )
        for role, entry in entries.items()
    }
    # specs must survive a real JSON encode/decode, like the manifest does
    return regressor_from_arrays(json.loads(json.dumps(spec)), mapped)


class TestColumnarCodecAllFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_disk_roundtrip_byte_identical(self, family, data, tmp_path):
        X, y = data
        model = make_surrogate(family, **FAMILY_PARAMS[family]).fit(X, y)
        clone = _roundtrip_via_disk(model, tmp_path)
        assert np.array_equal(clone.predict(X), model.predict(X))

    def test_decision_tree_roundtrip(self, data, tmp_path):
        X, y = data
        model = DecisionTreeRegressor(max_depth=5).fit(X, y)
        clone = _roundtrip_via_disk(model, tmp_path)
        assert np.array_equal(clone.predict(X), model.predict(X))

    def test_transform_wrapper_roundtrip(self, data, tmp_path):
        from repro.surrogates.transform import TransformedTargetRegressor

        X, y = data
        y_pos = np.exp(y / 10)
        t, mu, sigma = TransformedTargetRegressor.transform_target(y_pos, log=True)
        inner = make_surrogate("xgb", **FAMILY_PARAMS["xgb"]).fit(X, t)
        model = TransformedTargetRegressor(inner, mu=mu, sigma=sigma, log=True)
        clone = _roundtrip_via_disk(model, tmp_path)
        assert isinstance(clone, TransformedTargetRegressor)
        assert np.array_equal(clone.predict(X), model.predict(X))


class TestBenchmarkEquivalence:
    def test_query_byte_identical(self, saved, some_archs):
        json_bench = AccelNASBench.load(saved[0])
        col_bench = AccelNASBench.load(saved[1])
        for arch in some_archs[:8]:
            a = json_bench.query(arch, device="a100")
            b = col_bench.query(arch, device="a100")
            assert a.accuracy == b.accuracy
            assert a.performance == b.performance

    def test_query_batch_byte_identical(self, saved, some_archs):
        json_bench = AccelNASBench.load(saved[0])
        col_bench = AccelNASBench.load(saved[1])
        for device, metric in [
            (None, "throughput"),
            ("a100", "throughput"),
            ("zcu102", "latency"),
        ]:
            a = json_bench.query_batch(some_archs, device=device, metric=metric)
            b = col_bench.query_batch(some_archs, device=device, metric=metric)
            for ra, rb in zip(a, b):
                assert ra.accuracy == rb.accuracy
                assert ra.performance == rb.performance

    def test_autodetect_and_explicit_format_agree(self, saved, some_archs):
        auto = AccelNASBench.load(saved[1])
        explicit = AccelNASBench.load(saved[1], format="columnar")
        assert auto.query_accuracy(some_archs[0]) == explicit.query_accuracy(
            some_archs[0]
        )

    def test_targets_and_meta_preserved(self, bench, saved):
        col_bench = AccelNASBench.load(saved[1])
        assert col_bench.targets == bench.targets
        assert col_bench.meta == bench.meta

    def test_unknown_format_rejected(self, bench, saved, tmp_path):
        with pytest.raises(ValueError, match="format"):
            bench.save(tmp_path / "x", format="parquet")
        with pytest.raises(ValueError, match="format"):
            AccelNASBench.load(saved[0], format="parquet")


class TestLazyLoading:
    def test_nothing_mapped_until_first_query(self, saved, some_archs):
        col_bench = AccelNASBench.load(saved[1])
        assert col_bench.store.mapped_bytes == 0
        col_bench.query_accuracy(some_archs[0])
        after_acc = col_bench.store.mapped_bytes
        assert after_acc > 0
        col_bench.query_performance(some_archs[0], "a100", "throughput")
        assert col_bench.store.mapped_bytes > after_acc

    def test_membership_checks_do_not_load(self, saved):
        col_bench = AccelNASBench.load(saved[1])
        assert ("a100", "throughput") in col_bench._perf_models
        assert ("nope", "throughput") not in col_bench._perf_models
        assert len(col_bench._perf_models) == 3
        assert col_bench.store.mapped_bytes == 0

    def test_repeat_queries_hit_the_model_cache(self, saved, some_archs):
        col_bench = AccelNASBench.load(saved[1])
        col_bench.query_accuracy(some_archs[0])
        mapped = col_bench.store.mapped_bytes
        col_bench.query_accuracy(some_archs[1])
        assert col_bench.store.mapped_bytes == mapped

    def test_eager_load_maps_everything(self, saved):
        eager = AccelNASBench.load(saved[1], lazy=False)
        lazy = AccelNASBench.load(saved[1])
        assert eager.store.mapped_bytes > 0
        assert lazy.store.mapped_bytes == 0

    def test_unknown_target_still_rejected(self, saved, some_archs):
        col_bench = AccelNASBench.load(saved[1])
        with pytest.raises(KeyError):
            col_bench.query_performance(some_archs[0], "tpuv3", "throughput")

    def test_concurrent_first_queries_construct_each_model_once(
        self, saved, some_archs
    ):
        """Serving workers racing to the same cold surrogate must end up
        sharing one construction — no duplicate memmaps, identical answers."""
        import threading

        col_bench = AccelNASBench.load(saved[1])
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        results: list = [None] * n_threads
        errors: list = []

        def worker(i):
            try:
                barrier.wait()
                results[i] = col_bench.query_performance(
                    some_archs[0], "a100", "throughput"
                )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(set(results)) == 1  # every thread saw the same model
        inner = col_bench.store
        # One miss (the single construction); everyone else hit the cache.
        assert inner._misses == 1
        assert inner._hits == n_threads - 1
        # No duplicate memmaps: the mapped footprint equals one load, and a
        # repeat query does not grow it.
        mapped = inner.mapped_bytes
        col_bench.query_performance(some_archs[1], "a100", "throughput")
        assert inner.mapped_bytes == mapped


class TestIntegrity:
    @pytest.fixture
    def broken_store(self, bench, tmp_path):
        path = tmp_path / "bench.store"
        bench.save(path, format="columnar")
        return path

    def _some_shard(self, path):
        manifest = store.BenchmarkStore.open(path).manifest
        rel = sorted(manifest["shards"])[0]
        return rel, path / rel

    def test_verify_clean_store(self, saved):
        summary = store.verify_store(saved[1])
        assert summary["kind"] == "benchmark"
        assert summary["shards"] > 0

    def test_corrupted_shard_fails_verify(self, broken_store):
        rel, shard = self._some_shard(broken_store)
        raw = bytearray(shard.read_bytes())
        raw[7] ^= 0xFF  # same size, different content
        shard.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError) as err:
            store.verify_store(broken_store)
        assert rel in str(err.value)
        assert "sha256 mismatch" in err.value.reason

    def test_two_corrupt_shards_both_reported_in_one_pass(self, broken_store):
        """The verify sweep collects every bad shard instead of stopping at
        the first — one pass reports the full damage."""
        manifest = store.BenchmarkStore.open(broken_store).manifest
        rels = sorted(manifest["shards"])[:2]
        for rel in rels:
            shard = broken_store / rel
            raw = bytearray(shard.read_bytes())
            raw[3] ^= 0xFF
            shard.write_bytes(bytes(raw))
        with pytest.raises(store.ArtifactVerificationError) as err:
            store.verify_store(broken_store)
        assert len(err.value.errors) == 2
        assert "2 shard(s) failed verification" in err.value.reason
        for rel, sub in zip(rels, err.value.errors):
            assert rel in str(sub.path)
            assert "sha256 mismatch" in sub.reason
            assert rel in str(err.value)  # aggregate names every shard
        # Same collect-all behaviour through the other verify entry points.
        with pytest.raises(store.ArtifactVerificationError) as err:
            store.BenchmarkStore.open(broken_store).verify()
        assert len(err.value.errors) == 2
        with pytest.raises(store.ArtifactVerificationError) as err:
            store.verify_artifact(broken_store)
        assert len(err.value.errors) == 2

    def test_aggregate_error_is_an_integrity_error(self, broken_store):
        """Callers catching ArtifactIntegrityError keep working unchanged."""
        rel, shard = self._some_shard(broken_store)
        raw = bytearray(shard.read_bytes())
        raw[1] ^= 0xFF
        shard.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError):
            store.verify_store(broken_store)

    def test_truncated_shard_fails_load(self, broken_store):
        rel, shard = self._some_shard(broken_store)
        shard.write_bytes(shard.read_bytes()[:-4])
        with pytest.raises(ArtifactIntegrityError) as err:
            AccelNASBench.load(broken_store, lazy=False)
        assert rel in str(err.value)
        assert "truncated" in err.value.reason

    def test_missing_shard_fails_load(self, broken_store):
        rel, shard = self._some_shard(broken_store)
        shard.unlink()
        with pytest.raises(ArtifactIntegrityError) as err:
            AccelNASBench.load(broken_store, lazy=False)
        assert "missing shard" in err.value.reason

    def test_truncated_manifest_fails_open(self, broken_store):
        manifest = broken_store / store.MANIFEST_NAME
        text = manifest.read_text()
        manifest.write_text(text[: len(text) // 2])
        with pytest.raises(ArtifactIntegrityError) as err:
            AccelNASBench.load(broken_store)
        assert "not valid JSON" in err.value.reason

    def test_missing_manifest_fails_open(self, broken_store):
        (broken_store / store.MANIFEST_NAME).unlink()
        with pytest.raises(ArtifactIntegrityError) as err:
            store.BenchmarkStore.open(broken_store)
        assert "missing manifest" in err.value.reason

    def test_dtype_mismatch_fails_load(self, broken_store):
        # Re-sign the manifest with a lying dtype: the envelope checksum is
        # valid, so only the role-dtype check can catch the swap.
        manifest = store.BenchmarkStore.open(broken_store).manifest
        entry = manifest["models"]["accuracy"]
        rel = entry["arrays"]["threshold"]
        manifest["shards"][rel]["dtype"] = "int64"
        write_artifact(
            broken_store / store.MANIFEST_NAME,
            manifest,
            store.BENCHMARK_STORE_SCHEMA,
            store.STORE_SCHEMA_VERSION,
        )
        with pytest.raises(ArtifactIntegrityError) as err:
            AccelNASBench.load(broken_store, lazy=False)
        assert "dtype mismatch" in err.value.reason

    def test_tampered_manifest_payload_fails_checksum(self, broken_store):
        manifest_path = broken_store / store.MANIFEST_NAME
        envelope = json.loads(manifest_path.read_text())
        envelope["payload"]["meta"] = {"forged": True}
        manifest_path.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(ArtifactIntegrityError) as err:
            store.BenchmarkStore.open(broken_store)
        assert "sha256 mismatch" in err.value.reason

    def test_verify_artifact_on_json_envelope(self, saved):
        summary = store.verify_artifact(saved[0])
        assert summary == {"kind": "json", "schema": "accel-nasbench"}

    def test_verify_artifact_on_tampered_json(self, saved, tmp_path):
        bad = tmp_path / "bad.json"
        envelope = json.loads(saved[0].read_text())
        envelope["payload"]["meta"] = {"forged": True}
        bad.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(ArtifactIntegrityError) as err:
            store.verify_artifact(bad)
        assert "sha256 mismatch" in err.value.reason


class TestDatasetStore:
    @pytest.fixture(scope="class")
    def dataset(self):
        archs = sample_dataset_archs(25, seed=9)
        values = np.linspace(0.6, 0.8, 25)
        return BenchmarkDataset(
            name="ANB-Acc", metric="accuracy", archs=archs, values=values,
            meta={"seed": 9},
        )

    def test_multi_shard_roundtrip_byte_identical(self, dataset, tmp_path):
        path = dataset.to_columnar(tmp_path / "ds", shard_rows=7)
        loaded = BenchmarkDataset.from_columnar(path)
        assert loaded.name == dataset.name
        assert loaded.metric == dataset.metric
        assert loaded.meta == dataset.meta
        assert [a.to_string() for a in loaded.archs] == [
            a.to_string() for a in dataset.archs
        ]
        assert np.array_equal(loaded.values, dataset.values)

    def test_single_shard_values_stay_memmapped(self, dataset, tmp_path):
        path = dataset.to_columnar(tmp_path / "ds", shard_rows=100)
        loaded = BenchmarkDataset.from_columnar(path)
        # __post_init__'s asarray drops the memmap subclass but must keep
        # the mapped buffer: no copy, read-only, based on the memmap.
        assert not loaded.values.flags.owndata
        assert isinstance(loaded.values.base, np.memmap)
        assert np.array_equal(loaded.values, dataset.values)

    def test_manifest_records_key_ranges(self, dataset, tmp_path):
        path = dataset.to_columnar(tmp_path / "ds", shard_rows=10)
        summary = store.verify_store(path)
        assert summary["kind"] == "dataset"
        manifest = store._read_manifest(path, store.DATASET_STORE_SCHEMA)
        spans = manifest["row_shards"]
        assert [s["start"] for s in spans] == [0, 10, 20]
        keys = [a.to_string() for a in dataset.archs]
        assert spans[0]["key_range"] == [keys[0], keys[9]]
        assert spans[-1]["key_range"] == [keys[20], keys[24]]

    def test_corrupt_values_shard_detected(self, dataset, tmp_path):
        path = dataset.to_columnar(tmp_path / "ds", shard_rows=10)
        shard = next(path.glob("shards/*.values.bin"))
        raw = bytearray(shard.read_bytes())
        raw[0] ^= 0x01
        shard.write_bytes(bytes(raw))
        with pytest.raises(ArtifactIntegrityError) as err:
            store.verify_store(path)
        assert "sha256 mismatch" in err.value.reason

    def test_bad_shard_rows_rejected(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="shard_rows"):
            dataset.to_columnar(tmp_path / "ds", shard_rows=0)


class TestCli:
    def test_pack_and_verify_roundtrip(self, saved, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "packed.store"
        assert main(["pack", str(saved[0]), str(out), "--log-level", "off"]) == 0
        assert main(["verify", str(saved[0]), str(out), "--log-level", "off"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert any(line.startswith("packed benchmark") for line in lines)
        assert sum(line.startswith("OK") for line in lines) == 2

    def test_verify_exits_nonzero_on_corruption(self, bench, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bench.store"
        bench.save(path, format="columnar")
        shard = sorted(path.glob("shards/**/*.bin"))[0]
        raw = bytearray(shard.read_bytes())
        raw[1] ^= 0xFF
        shard.write_bytes(bytes(raw))
        assert main(["verify", str(path), "--log-level", "off"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_pack_dataset_artifact(self, tmp_path, capsys):
        from repro.cli import main

        archs = sample_dataset_archs(12, seed=4)
        dataset = BenchmarkDataset(
            name="ANB-Acc",
            metric="accuracy",
            archs=archs,
            values=np.linspace(0.6, 0.8, 12),
        )
        src = tmp_path / "ds.json"
        dataset.to_json(src)
        out = tmp_path / "ds.store"
        args = ["pack", str(src), str(out), "--shard-rows", "5", "--log-level", "off"]
        assert main(args) == 0
        assert "packed dataset" in capsys.readouterr().out
        loaded = BenchmarkDataset.from_columnar(out)
        assert np.array_equal(loaded.values, dataset.values)

    def test_pack_rejects_foreign_schema(self, tmp_path, capsys):
        from repro.cli import main

        src = tmp_path / "foreign.json"
        write_artifact(src, {"x": 1}, "something-else", 1)
        assert main(["pack", str(src), str(tmp_path / "out"), "--log-level", "off"]) == 1
        assert "unsupported schema" in capsys.readouterr().out

    def test_query_through_columnar_store(self, saved, some_archs, capsys):
        from repro.cli import main

        args = [
            "query",
            "--bench",
            str(saved[1]),
            "--arch",
            some_archs[0].to_string(),
            "--device",
            "a100",
            "--log-level",
            "off",
        ]
        assert main(args) == 0
        payload = json.loads(capsys.readouterr().out)
        json_bench = AccelNASBench.load(saved[0])
        assert payload["accuracy"] == json_bench.query(
            some_archs[0], device="a100"
        ).accuracy


class TestTelemetryGauges:
    def test_gauges_recorded_when_active(self, saved, some_archs):
        import repro.obs as obs

        obs.configure(level="warning")
        try:
            col_bench = AccelNASBench.load(saved[1])
            col_bench.query_accuracy(some_archs[0])
            col_bench.query_accuracy(some_archs[1])
            snapshot = obs.metrics().snapshot()
            gauges = snapshot["gauges"]
            assert gauges["store.model_misses"] == 1
            assert gauges["store.model_hits"] == 1
            assert gauges["store.mapped_bytes"] > 0
        finally:
            obs.reset()

    def test_no_gauges_when_inactive(self, saved, some_archs):
        import repro.obs as obs

        col_bench = AccelNASBench.load(saved[1])
        col_bench.query_accuracy(some_archs[0])
        assert "store.model_hits" not in obs.metrics().snapshot().get("gauges", {})
