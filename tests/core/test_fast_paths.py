"""Equivalence suite: every fast path must match its reference path exactly.

The performance layer (encoded-feature cache, batched queries, single-row
ensemble fast path, parallel collection and build) is only admissible because
it is *bit-identical* to the scalar/serial reference implementations.  These
tests pin that contract with exact comparisons.
"""

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.core.dataset import (
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
)
from repro.core.parallel import chunked_map, deterministic_map, resolve_n_jobs
from repro.trainsim.schemes import P_STAR

BUILD_KWARGS = dict(
    num_archs=120,
    devices={"a100": ("throughput",)},
    sample_seed=7,
    family="rf",
)


@pytest.fixture(scope="module")
def small_bench():
    bench, _ = AccelNASBench.build(P_STAR, **BUILD_KWARGS)
    return bench


class TestParallelHelpers:
    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4
        assert resolve_n_jobs(0) == 1
        assert resolve_n_jobs(-1) >= 1
        assert resolve_n_jobs(None) >= 1

    def test_deterministic_map_preserves_order(self):
        items = list(range(37))
        assert deterministic_map(lambda x: x * x, items, n_jobs=4) == [
            x * x for x in items
        ]

    def test_chunked_map_preserves_order(self):
        items = list(range(101))
        assert chunked_map(lambda x: x - 3, items, n_jobs=5) == [
            x - 3 for x in items
        ]
        assert chunked_map(lambda x: x, [], n_jobs=3) == []


class TestCollectionParallelism:
    def test_accuracy_collection_matches_serial(self, some_archs):
        archs = some_archs[:24]
        serial = collect_accuracy_dataset(archs, P_STAR)
        parallel = collect_accuracy_dataset(archs, P_STAR, n_jobs=3)
        assert (serial.values == parallel.values).all()
        assert serial.archs == parallel.archs

    def test_device_collection_matches_serial(self, some_archs):
        archs = some_archs[:16]
        serial = collect_device_dataset(archs, "zcu102", "latency")
        parallel = collect_device_dataset(archs, "zcu102", "latency", n_jobs=4)
        assert (serial.values == parallel.values).all()


class TestParallelBuild:
    def test_parallel_build_saves_identical_bytes(self, tmp_path):
        serial, _ = AccelNASBench.build(P_STAR, **BUILD_KWARGS)
        parallel, _ = AccelNASBench.build(
            P_STAR, n_jobs=2, collect_n_jobs=2, **BUILD_KWARGS
        )
        p1, p2 = tmp_path / "serial.json", tmp_path / "parallel.json"
        serial.save(p1)
        parallel.save(p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_parallel_build_reports_in_input_order(self):
        _, serial_reports = AccelNASBench.build(P_STAR, **BUILD_KWARGS)
        _, parallel_reports = AccelNASBench.build(P_STAR, n_jobs=2, **BUILD_KWARGS)
        assert [r.dataset for r in serial_reports] == [
            r.dataset for r in parallel_reports
        ]
        assert serial_reports[0].dataset == "ANB-Acc"


class TestBatchedQueries:
    def test_query_batch_matches_scalar_query_exactly(self, small_bench, some_archs):
        archs = some_archs[:20]
        batched = small_bench.query_batch(archs, device="a100")
        for arch, res in zip(archs, batched):
            single = small_bench.query(arch, device="a100")
            assert res == single  # dataclass equality: exact floats

    def test_accuracy_batch_matches_scalar_exactly(self, small_bench, some_archs):
        archs = some_archs[:20]
        batched = small_bench.query_accuracy_batch(archs)
        singles = np.asarray([small_bench.query_accuracy(a) for a in archs])
        assert (batched == singles).all()

    def test_performance_batch_matches_scalar_exactly(self, small_bench, some_archs):
        archs = some_archs[:20]
        batched = small_bench.query_performance_batch(archs, "a100", "throughput")
        singles = np.asarray(
            [small_bench.query_performance(a, "a100", "throughput") for a in archs]
        )
        assert (batched == singles).all()

    def test_batch_unknown_target_rejected(self, small_bench, some_archs):
        with pytest.raises(KeyError):
            small_bench.query_batch(some_archs[:2], device="tpuv3")
        with pytest.raises(KeyError):
            small_bench.performance_objective("tpuv3")


class TestEnsembleFastPath:
    def test_single_row_matches_batched_predict_sum(self, small_bench, some_archs):
        # The accuracy model wraps an rf whose predictor exposes both paths.
        inner = small_bench._accuracy_model.base
        inner.predict(small_bench.encoder.encode(some_archs[:2]))  # warm predictor
        predictor = inner._predictor
        X = small_bench.encoder.encode(some_archs[:12])
        multi = predictor.predict_sum(X)
        ones = np.asarray(
            [predictor.predict_one_sum(X[i]) for i in range(X.shape[0])]
        )
        assert (multi == ones).all()

    def test_predict_dispatches_single_row(self, small_bench, some_archs):
        X = small_bench.encoder.encode(some_archs[:6])
        inner = small_bench._accuracy_model.base
        full = inner.predict(X)
        rows = np.concatenate([inner.predict(X[i : i + 1]) for i in range(6)])
        assert (full == rows).all()
