"""Unit tests for the reliability layer (faults, retries, journal, integrity)."""

import json
import math
import os

import pytest

from repro.core.reliability import (
    ArtifactIntegrityError,
    CircuitBreaker,
    CircuitOpen,
    CollectionError,
    Deadline,
    DeadlineExceeded,
    FailureRecord,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    Journal,
    MeasurementTimeout,
    NonFiniteResult,
    RetryPolicy,
    atomic_write,
    payload_checksum,
    read_artifact,
    run_tasks,
    write_artifact,
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic timing tests."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meltdown")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("nan", rate=1.5)

    def test_key_filter(self):
        spec = FaultSpec("crash", keys=["a"])
        assert spec.eligible("a", 0)
        assert not spec.eligible("b", 0)

    def test_attempt_window(self):
        spec = FaultSpec("timeout", max_attempt=2)
        assert spec.eligible("k", 0) and spec.eligible("k", 1)
        assert not spec.eligible("k", 2)


class TestFaultPlan:
    def test_deterministic_across_instances(self):
        a = FaultPlan([FaultSpec("nan", rate=0.5)], seed=7)
        b = FaultPlan([FaultSpec("nan", rate=0.5)], seed=7)
        keys = [f"arch-{i}" for i in range(200)]
        assert [a.fault_for(k) for k in keys] == [b.fault_for(k) for k in keys]

    def test_seed_changes_decisions(self):
        keys = [f"arch-{i}" for i in range(200)]
        a = FaultPlan([FaultSpec("nan", rate=0.5)], seed=0)
        b = FaultPlan([FaultSpec("nan", rate=0.5)], seed=1)
        assert [a.fault_for(k) for k in keys] != [b.fault_for(k) for k in keys]

    def test_rate_zero_never_fires(self):
        plan = FaultPlan([FaultSpec("nan", rate=0.0)])
        assert all(plan.fault_for(f"k{i}") is None for i in range(100))

    def test_rate_one_always_fires(self):
        plan = FaultPlan([FaultSpec("nan", rate=1.0)])
        assert all(plan.fault_for(f"k{i}") is not None for i in range(100))

    def test_rate_is_roughly_honoured(self):
        plan = FaultPlan([FaultSpec("nan", rate=0.3)], seed=11)
        hits = sum(plan.fault_for(f"k{i}") is not None for i in range(2000))
        assert 0.25 < hits / 2000 < 0.35

    def test_apply_crash_raises(self):
        plan = FaultPlan.crash_on(["victim"])
        with pytest.raises(InjectedCrash) as info:
            plan.apply("victim", 1.0)
        assert info.value.key == "victim"
        assert plan.apply("other", 1.0) == pytest.approx(1.0)

    def test_apply_timeout_raises(self):
        plan = FaultPlan([FaultSpec("timeout", keys=["t"])])
        with pytest.raises(MeasurementTimeout):
            plan.apply("t", 1.0)

    def test_apply_value_faults(self):
        nan_plan = FaultPlan([FaultSpec("nan")])
        assert math.isnan(nan_plan.apply("k", 0.7))
        inf_plan = FaultPlan([FaultSpec("inf")])
        assert math.isinf(inf_plan.apply("k", 0.7))
        spike = FaultPlan([FaultSpec("spike", spike_factor=10.0)])
        assert spike.apply("k", 2.0) == pytest.approx(20.0)

    def test_first_firing_spec_wins(self):
        plan = FaultPlan([FaultSpec("nan"), FaultSpec("timeout")])
        assert math.isnan(plan.apply("k", 1.0))

    def test_from_string(self):
        plan = FaultPlan.from_string("nan:0.25, timeout:1.0@2, crash", seed=3)
        assert [s.kind for s in plan.specs] == ["nan", "timeout", "crash"]
        assert plan.specs[0].rate == pytest.approx(0.25)
        assert plan.specs[1].max_attempt == 2
        assert plan.specs[2].rate == pytest.approx(1.0)
        assert plan.seed == 3

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.from_string("nan:lots")


class TestRetryPolicy:
    def _recording(self, **kwargs):
        sleeps = []
        policy = RetryPolicy(sleep=sleeps.append, **kwargs)
        return policy, sleeps

    def test_success_first_try_never_sleeps(self):
        policy, sleeps = self._recording(max_attempts=5)
        assert policy.run(lambda attempt: 42.0, "k") == pytest.approx(42.0)
        assert sleeps == []

    def test_retries_transient_then_succeeds(self):
        policy, sleeps = self._recording(max_attempts=3)
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 2:
                raise MeasurementTimeout("k", attempt)
            return 7.0

        assert policy.run(flaky, "k") == pytest.approx(7.0)
        assert calls == [0, 1, 2]
        assert len(sleeps) == 2

    def test_exhaustion_raises_last_error(self):
        policy, sleeps = self._recording(max_attempts=2)

        def always(attempt):
            raise MeasurementTimeout("k", attempt)

        with pytest.raises(MeasurementTimeout):
            policy.run(always, "k")
        assert len(sleeps) == 1  # no sleep after the final attempt

    def test_crash_is_not_retried(self):
        policy, sleeps = self._recording(max_attempts=5)

        def crash(attempt):
            raise InjectedCrash("k", attempt)

        with pytest.raises(InjectedCrash):
            policy.run(crash, "k")
        assert sleeps == []

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=1.0, backoff=2.0, max_delay=3.0, jitter=0.0
        )
        assert policy.delay("k", 0) == pytest.approx(1.0)
        assert policy.delay("k", 1) == pytest.approx(2.0)
        assert policy.delay("k", 2) == pytest.approx(3.0)  # capped
        assert policy.delay("k", 9) == pytest.approx(3.0)

    def test_jitter_is_seeded_and_per_key(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5, seed=0)
        again = RetryPolicy(base_delay=1.0, jitter=0.5, seed=0)
        assert policy.delay("a", 0) == pytest.approx(again.delay("a", 0))
        delays = {round(policy.delay(f"k{i}", 0), 12) for i in range(32)}
        assert len(delays) > 1  # decorrelated across keys
        other_seed = RetryPolicy(base_delay=1.0, jitter=0.5, seed=9)
        some_differ = any(
            abs(policy.delay(f"k{i}", 0) - other_seed.delay(f"k{i}", 0)) > 1e-12
            for i in range(32)
        )
        assert some_differ

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestFailureRecord:
    def test_roundtrip(self):
        record = FailureRecord("arch", "MeasurementTimeout", "boom", 3)
        assert FailureRecord.from_dict(record.to_dict()) == record


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc") as journal:
            journal.append("a", 0.5)
            journal.append("b", 0.625)
        replayed = Journal(path, dataset="ANB-Acc").replay()
        assert replayed == {"a": 0.5, "b": 0.625}

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert Journal(tmp_path / "nope.jsonl", dataset="x").replay() == {}

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc") as journal:
            journal.append("a", 0.5)
            journal.append("b", 0.625)
        text = path.read_text()
        path.write_text(text[: len(text) - 8])  # tear the last record
        replayed = Journal(path, dataset="ANB-Acc").replay()
        assert replayed == {"a": 0.5}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc") as journal:
            journal.append("a", 0.5)
            journal.append("b", 0.625)
        lines = path.read_text().splitlines()
        lines[1] = "{corrupt"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ArtifactIntegrityError, match="line 2"):
            Journal(path, dataset="ANB-Acc").replay()

    def test_wrong_dataset_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc") as journal:
            journal.append("a", 0.5)
        with pytest.raises(ArtifactIntegrityError, match="belongs to dataset"):
            Journal(path, dataset="ANB-a100-Thr").replay()

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"whatever": 1}\n')
        with pytest.raises(ArtifactIntegrityError, match="not a collection journal"):
            Journal(path, dataset="ANB-Acc").replay()

    def test_appending_to_wrong_journal_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc") as journal:
            journal.append("a", 0.5)
        with pytest.raises(ArtifactIntegrityError):
            Journal(path, dataset="other").append("b", 1.0)

    def test_discard_removes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = Journal(path, dataset="ANB-Acc")
        journal.append("a", 0.5)
        journal.discard()
        assert not path.exists()
        journal.discard()  # idempotent

    def test_fsync_mode(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc", fsync=True) as journal:
            journal.append("a", 0.5)
        assert Journal(path, dataset="ANB-Acc").replay() == {"a": 0.5}


class TestRunTasks:
    def test_plain_run(self):
        outcome = run_tasks(["a", "b"], lambda key, attempt: float(len(key)))
        assert outcome.values == {"a": 1.0, "b": 1.0}
        assert outcome.failures == [] and outcome.replayed == 0

    def test_nonfinite_rejected_and_gated(self):
        with pytest.raises(CollectionError):
            run_tasks(["a"], lambda key, attempt: float("nan"))

    def test_nonfinite_quarantined_below_gate(self):
        def task(key, attempt):
            return float("inf") if key == "bad" else 1.0

        outcome = run_tasks(
            ["good", "bad"], task, min_success_fraction=0.5
        )
        assert outcome.values == {"good": 1.0}
        assert [f.key for f in outcome.failures] == ["bad"]
        assert outcome.failures[0].error == "NonFiniteResult"

    def test_retry_heals_transient_fault(self):
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)

        def task(key, attempt):
            if attempt == 0:
                raise MeasurementTimeout(key, attempt)
            return 5.0

        outcome = run_tasks(["a"], task, retry_policy=policy)
        assert outcome.values == {"a": 5.0}

    def test_journal_resume_skips_done_work(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl", dataset="d")
        journal.append("a", 1.0)
        journal.close()
        computed = []

        def task(key, attempt):
            computed.append(key)
            return 2.0

        journal = Journal(tmp_path / "j.jsonl", dataset="d")
        outcome = run_tasks(["a", "b"], task, journal=journal, resume=True)
        journal.close()
        assert computed == ["b"]
        assert outcome.values == {"a": 1.0, "b": 2.0}
        assert outcome.replayed == 1

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl", dataset="d")
        journal.append("a", 111.0)
        journal.close()
        journal = Journal(tmp_path / "j.jsonl", dataset="d")
        outcome = run_tasks(
            ["a"], lambda key, attempt: 1.0, journal=journal, resume=False
        )
        journal.close()
        assert outcome.values == {"a": 1.0}
        assert outcome.replayed == 0

    def test_gate_validation(self):
        with pytest.raises(ValueError):
            run_tasks([], lambda k, a: 0.0, min_success_fraction=2.0)


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(path, "hello")
        assert path.read_text() == "hello"

    def test_overwrites_atomically(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write(path, "new")
        assert path.read_text() == "new"

    def test_interrupted_write_leaves_old_file_intact(self, tmp_path, monkeypatch):
        path = tmp_path / "out.txt"
        atomic_write(path, "precious")

        def exploding_replace(src, dst):
            raise OSError("simulated crash at rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write(path, "half-written garbage")
        assert path.read_text() == "precious"
        leftovers = [p for p in tmp_path.iterdir() if p.name != "out.txt"]
        assert leftovers == []  # temp file cleaned up


class TestArtifactEnvelope:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "artifact.json"
        payload = {"values": [1.0, 2.5], "name": "x"}
        write_artifact(path, payload, "anb-test", 1)
        assert read_artifact(path, "anb-test", 1) == payload

    def test_byte_stable(self, tmp_path):
        one, two = tmp_path / "a.json", tmp_path / "b.json"
        write_artifact(one, {"b": 1, "a": 2}, "anb-test", 1)
        write_artifact(two, {"a": 2, "b": 1}, "anb-test", 1)
        assert one.read_bytes() == two.read_bytes()

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"x": 1}, "anb-test", 1)
        path.write_text(path.read_text()[:-10])
        with pytest.raises(ArtifactIntegrityError, match="not valid JSON") as info:
            read_artifact(path, "anb-test", 1)
        assert str(path) in str(info.value)

    def test_missing_envelope(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"name": "x", "values": []}))
        with pytest.raises(ArtifactIntegrityError, match="envelope"):
            read_artifact(path, "anb-test", 1)

    def test_schema_name_mismatch(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"x": 1}, "anb-other", 1)
        with pytest.raises(
            ArtifactIntegrityError, match="'anb-other' found, expected 'anb-test'"
        ):
            read_artifact(path, "anb-test", 1)

    def test_schema_version_mismatch(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"x": 1}, "anb-test", 2)
        with pytest.raises(
            ArtifactIntegrityError, match="version 2 found, expected 1"
        ):
            read_artifact(path, "anb-test", 1)

    def test_checksum_mismatch(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_artifact(path, {"x": 1}, "anb-test", 1)
        envelope = json.loads(path.read_text())
        envelope["payload"]["x"] = 999  # tamper without updating the checksum
        path.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(ArtifactIntegrityError, match="sha256 mismatch"):
            read_artifact(path, "anb-test", 1)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactIntegrityError, match="unreadable"):
            read_artifact(tmp_path / "ghost.json", "anb-test", 1)

    def test_checksum_is_canonical(self):
        assert payload_checksum({"a": 1, "b": 2}) == payload_checksum(
            {"b": 2, "a": 1}
        )


class TestDeadline:
    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline.after(-1.0)

    def test_remaining_counts_down_on_the_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == 2.0
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_check_raises_with_key_and_overrun(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("query")  # within budget: no-op
        clock.advance(1.25)
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("query")
        assert err.value.key == "query"
        assert err.value.overrun == pytest.approx(0.25)

    def test_zero_budget_expires_immediately(self):
        deadline = Deadline.after(0.0, clock=FakeClock())
        assert deadline.expired()


class TestRetryPolicyMaxElapsed:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_elapsed"):
            RetryPolicy(max_elapsed=-1.0)

    def test_budget_exhausted_mid_backoff_gives_up_without_sleeping(self):
        """The next backoff would blow the wall budget: raise now instead of
        sleeping into a deadline we already know we will miss."""
        clock = FakeClock()
        sleeps = []

        def sleeper(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        policy = RetryPolicy(
            max_attempts=5,
            base_delay=10.0,
            max_delay=10.0,
            jitter=0.0,
            max_elapsed=5.0,
            clock=clock,
            sleep=sleeper,
        )
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise MeasurementTimeout("task", attempt)

        with pytest.raises(MeasurementTimeout):
            policy.run(fn, "task")
        assert calls == [0]  # first attempt ran; no doomed retries
        assert sleeps == []  # and the exhausted budget was never slept into

    def test_budget_allows_early_retries_then_stops(self):
        clock = FakeClock()
        sleeps = []

        def sleeper(seconds):
            sleeps.append(seconds)
            clock.advance(seconds)

        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            backoff=2.0,
            jitter=0.0,
            max_elapsed=2.5,
            clock=clock,
            sleep=sleeper,
        )
        calls = []

        def fn(attempt):
            calls.append(attempt)
            raise MeasurementTimeout("task", attempt)

        with pytest.raises(MeasurementTimeout):
            policy.run(fn, "task")
        # attempt 0 fails, backoff 1.0 fits (1.0 <= 2.5); attempt 1 fails,
        # backoff 2.0 would reach 3.0 > 2.5: stop.
        assert calls == [0, 1]
        assert sleeps == [1.0]

    def test_success_is_unaffected_by_budget(self):
        policy = RetryPolicy(max_elapsed=0.0, clock=FakeClock())
        assert policy.run(lambda attempt: 42.0, "task") == 42.0

    def test_within_adopts_deadline_budget_and_clock(self):
        clock = FakeClock()
        deadline = Deadline.after(0.7, clock=clock)
        clock.advance(0.2)
        policy = RetryPolicy(seed=3).within(deadline)
        assert policy.max_elapsed == pytest.approx(0.5)
        assert policy.clock is clock
        assert policy.seed == 3  # everything else carried over

    def test_within_an_expired_deadline_clamps_to_zero(self):
        clock = FakeClock()
        deadline = Deadline.after(0.1, clock=clock)
        clock.advance(1.0)
        assert RetryPolicy().within(deadline).max_elapsed == 0.0


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=2):
        return CircuitBreaker(
            name="query",
            failure_threshold=threshold,
            recovery=RetryPolicy(base_delay=0.5, backoff=2.0, jitter=0.0),
            clock=clock,
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)

    def test_starts_closed_and_admits(self):
        breaker = self._breaker(FakeClock())
        assert breaker.state == "closed"
        breaker.allow()
        breaker.record_success()
        assert breaker.trips == 0

    def test_trips_after_consecutive_failures(self):
        breaker = self._breaker(FakeClock())
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        with pytest.raises(CircuitOpen) as err:
            breaker.allow()
        assert err.value.name == "query"
        assert err.value.retry_after == pytest.approx(0.5)

    def test_success_resets_the_consecutive_count(self):
        breaker = self._breaker(FakeClock(), threshold=2)
        breaker.allow()
        breaker.record_failure()
        breaker.allow()
        breaker.record_success()
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two in a row

    def test_cooldown_schedule_is_deterministic(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        recovery = RetryPolicy(base_delay=0.5, backoff=2.0, jitter=0.0)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(recovery.delay("query", 0))

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        clock.advance(0.6)  # past the 0.5 cooldown
        assert breaker.state == "half_open"
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpen):
            breaker.allow()  # probe still in flight
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.allow()  # closed again: freely admitting

    def test_failed_probe_reopens_with_longer_cooldown(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        first_cooldown = breaker.retry_after()
        clock.advance(0.6)
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.retry_after() > first_cooldown  # backoff doubled

    def test_abandoned_probe_frees_the_slot_without_a_verdict(self):
        clock = FakeClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        clock.advance(0.6)
        breaker.allow()  # probe admitted...
        breaker.record_abandon()  # ...but its deadline expired
        assert breaker.state == "half_open"  # no verdict either way
        breaker.allow()  # the next caller can probe
        breaker.record_success()
        assert breaker.state == "closed"

    def test_abandon_outside_half_open_is_a_no_op(self):
        breaker = self._breaker(FakeClock())
        breaker.allow()
        breaker.record_abandon()
        assert breaker.state == "closed"
        assert breaker.trips == 0


class TestJournalTornTailTelemetry:
    def _torn_journal(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Journal(path, dataset="ANB-Acc") as journal:
            journal.append("a", 0.5)
            journal.append("b", 0.625)
        text = path.read_text()
        truncated = text[: len(text) - 8]
        path.write_text(truncated)
        torn_line = truncated.splitlines()[-1]
        offset = len(truncated.encode()) - len(torn_line.encode())
        return path, torn_line, offset

    def test_torn_tail_is_logged_with_byte_offset(self, tmp_path):
        import io

        import repro.obs as obs

        path, torn_line, offset = self._torn_journal(tmp_path)
        stream = io.StringIO()
        obs.configure(level="warning", json=True, stream=stream)
        try:
            replayed = Journal(path, dataset="ANB-Acc").replay()
        finally:
            obs.reset()
        assert replayed == {"a": 0.5}  # recovery behaviour unchanged
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        torn = [r for r in records if r["event"] == "journal.torn_tail"]
        assert len(torn) == 1
        assert torn[0]["level"] == "warning"
        assert torn[0]["path"] == str(path)
        assert torn[0]["byte_offset"] == offset
        assert torn[0]["torn_bytes"] == len(torn_line.encode())

    def test_torn_tail_is_silent_without_telemetry(self, tmp_path):
        import repro.obs as obs

        path, _, _ = self._torn_journal(tmp_path)
        obs.reset()
        assert not obs.telemetry_active()
        assert Journal(path, dataset="ANB-Acc").replay() == {"a": 0.5}
