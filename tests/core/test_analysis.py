"""Unit tests for the benchmark-validation analyses."""

import numpy as np
import pytest

from repro.core.analysis import (
    decile_taus,
    prediction_report,
    regret_curve,
    topk_overlap,
)


@pytest.fixture
def noisy_pair():
    rng = np.random.default_rng(0)
    true = rng.normal(size=200)
    predicted = true + rng.normal(scale=0.3, size=200)
    return true, predicted


class TestTopkOverlap:
    def test_perfect_prediction(self):
        v = np.arange(50, dtype=float)
        assert topk_overlap(v, v, 5) == 1.0

    def test_reversed_prediction(self):
        v = np.arange(50, dtype=float)
        assert topk_overlap(v, -v, 5) == 0.0

    def test_k_validated(self):
        v = np.arange(10, dtype=float)
        with pytest.raises(ValueError):
            topk_overlap(v, v, 0)
        with pytest.raises(ValueError):
            topk_overlap(v, v, 11)

    def test_partial_overlap(self):
        true = np.array([0, 1, 2, 3.0])
        pred = np.array([0, 3, 1, 2.0])
        # true top-2 {2,3}; predicted top-2 {1,3} -> overlap 1/2.
        assert topk_overlap(true, pred, 2) == 0.5


class TestPredictionReport:
    def test_fields_consistent(self, noisy_pair):
        true, predicted = noisy_pair
        report = prediction_report(true, predicted)
        assert report.n == 200
        assert 0.7 < report.r2 < 1.0
        assert 0.5 < report.kendall < 1.0
        assert report.top10_overlap > 0.3
        assert "R2=" in report.row()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prediction_report(np.ones(5), np.ones(4))


class TestDecileTaus:
    def test_ten_values(self, noisy_pair):
        taus = decile_taus(*noisy_pair)
        assert len(taus) == 10
        assert all(-1 <= t <= 1 for t in taus)

    def test_perfect_prediction_all_ones(self):
        v = np.linspace(0, 1, 100)
        assert all(t == pytest.approx(1.0) for t in decile_taus(v, v))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            decile_taus(np.arange(10), np.arange(10))


class TestRegret:
    def test_zero_regret_for_perfect(self):
        v = np.arange(100, dtype=float)
        assert all(r == 0.0 for r in regret_curve(v, v).values())

    def test_regret_decreases_with_k(self, noisy_pair):
        true, predicted = noisy_pair
        curve = regret_curve(true, predicted, ks=(1, 5, 25))
        assert curve[25] <= curve[1]

    def test_oversized_k_skipped(self):
        v = np.arange(10, dtype=float)
        assert 25 not in regret_curve(v, v, ks=(1, 25))

    def test_regret_nonnegative(self, noisy_pair):
        assert all(r >= 0 for r in regret_curve(*noisy_pair).values())
