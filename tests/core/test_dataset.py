"""Unit tests for dataset collection and splitting."""

import json

import numpy as np
import pytest

from repro.core.dataset import (
    BenchmarkDataset,
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
    train_val_test_split,
)
from repro.core.reliability import ArtifactIntegrityError
from repro.trainsim.schemes import P_STAR


class TestBenchmarkDataset:
    def test_length_mismatch_rejected(self, some_archs):
        with pytest.raises(ValueError):
            BenchmarkDataset("x", "accuracy", some_archs[:3], np.ones(4))

    def test_unknown_metric_rejected(self, some_archs):
        with pytest.raises(ValueError):
            BenchmarkDataset("x", "energy", some_archs[:2], np.ones(2))

    def test_json_roundtrip(self, tmp_path, some_archs):
        ds = BenchmarkDataset(
            "ANB-test",
            "accuracy",
            some_archs[:5],
            np.linspace(0.6, 0.8, 5),
            meta={"seed": 1},
        )
        path = tmp_path / "ds.json"
        ds.to_json(path)
        loaded = BenchmarkDataset.from_json(path)
        assert loaded.name == ds.name
        assert loaded.metric == ds.metric
        assert loaded.archs == ds.archs
        assert np.allclose(loaded.values, ds.values)
        assert loaded.meta == {"seed": 1}

    def _sample(self, some_archs) -> BenchmarkDataset:
        return BenchmarkDataset(
            "ANB-test", "accuracy", some_archs[:4], np.linspace(0.6, 0.8, 4)
        )

    def test_truncated_file_raises_integrity_error(self, tmp_path, some_archs):
        path = tmp_path / "ds.json"
        self._sample(some_archs).to_json(path)
        path.write_text(path.read_text()[:-20])
        with pytest.raises(ArtifactIntegrityError, match="not valid JSON"):
            BenchmarkDataset.from_json(path)

    def test_tampered_file_fails_checksum(self, tmp_path, some_archs):
        path = tmp_path / "ds.json"
        self._sample(some_archs).to_json(path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["values"][0] = 999.0
        path.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(ArtifactIntegrityError, match="sha256 mismatch"):
            BenchmarkDataset.from_json(path)

    def test_legacy_unversioned_file_rejected_clearly(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"name": "x", "metric": "accuracy"}))
        with pytest.raises(ArtifactIntegrityError, match="envelope"):
            BenchmarkDataset.from_json(path)

    def test_interrupted_write_preserves_previous_artifact(
        self, tmp_path, some_archs, monkeypatch
    ):
        """Satellite: a crash mid-write must leave the old file intact."""
        import os

        path = tmp_path / "ds.json"
        ds = self._sample(some_archs)
        ds.to_json(path)
        before = path.read_bytes()

        def exploding_replace(src, dst):
            raise OSError("killed mid-write")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            ds.to_json(path)
        assert path.read_bytes() == before
        loaded = BenchmarkDataset.from_json(path)  # still a valid artifact
        assert loaded.name == ds.name


class TestCollection:
    def test_accuracy_dataset(self, small_acc_dataset):
        assert small_acc_dataset.metric == "accuracy"
        assert len(small_acc_dataset) == 300
        assert np.all(small_acc_dataset.values > 0.5)
        assert np.all(small_acc_dataset.values < 0.9)
        assert small_acc_dataset.meta["scheme"] == P_STAR.to_dict()

    def test_shared_sample_is_deterministic(self):
        a = sample_dataset_archs(20, seed=9)
        b = sample_dataset_archs(20, seed=9)
        assert a == b
        assert len(set(a)) == 20

    def test_device_dataset_throughput(self, some_archs):
        ds = collect_device_dataset(some_archs[:10], "a100", "throughput")
        assert ds.name == "ANB-a100-Thr"
        assert np.all(ds.values > 0)

    def test_device_dataset_latency(self, some_archs):
        ds = collect_device_dataset(some_archs[:10], "zcu102", "latency")
        assert ds.name == "ANB-zcu102-Lat"
        assert np.all(ds.values > 0)

    def test_latency_unsupported_on_gpu(self, some_archs):
        with pytest.raises(ValueError, match="does not support"):
            collect_device_dataset(some_archs[:2], "a100", "latency")

    def test_collection_is_reproducible(self, some_archs):
        a = collect_device_dataset(some_archs[:5], "tpuv3", "throughput")
        b = collect_device_dataset(some_archs[:5], "tpuv3", "throughput")
        assert np.array_equal(a.values, b.values)


class TestSplit:
    def test_paper_ratios(self):
        train, val, test = train_val_test_split(5200, seed=0)
        assert len(train) == 4160
        assert len(val) == 520
        assert len(test) == 520

    def test_disjoint_and_covering(self):
        train, val, test = train_val_test_split(100, seed=1)
        combined = np.concatenate([train, val, test])
        assert len(combined) == 100
        assert len(set(combined.tolist())) == 100

    def test_deterministic(self):
        a = train_val_test_split(50, seed=7)
        b = train_val_test_split(50, seed=7)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_ratios_must_sum_to_one(self):
        with pytest.raises(ValueError):
            train_val_test_split(100, ratios=(0.5, 0.1, 0.1))

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            train_val_test_split(2)

    def test_tiny_dataset_still_three_way(self):
        train, val, test = train_val_test_split(5)
        assert len(train) >= 1 and len(val) >= 1 and len(test) >= 1
