"""Unit tests for the surrogate fitting pipeline."""

import numpy as np
import pytest

from repro.core.dataset import collect_device_dataset
from repro.core.surrogate_fit import SurrogateFitter
from repro.surrogates.transform import TransformedTargetRegressor


@pytest.fixture(scope="module")
def fitter():
    return SurrogateFitter()


@pytest.fixture(scope="module")
def small_thr_dataset(small_acc_dataset):
    return collect_device_dataset(
        small_acc_dataset.archs, "rtx3090", "throughput"
    )


class TestAccuracyFit:
    def test_xgb_report_quality(self, fitter, small_acc_dataset):
        report = fitter.fit(small_acc_dataset, "xgb")
        assert report.dataset == "ANB-Acc"
        assert report.family == "xgb"
        assert report.r2 > 0.8
        assert report.kendall > 0.6
        assert report.mae < 0.01

    def test_model_predicts_raw_accuracy_scale(self, fitter, small_acc_dataset, encoder):
        report = fitter.fit(small_acc_dataset, "xgb")
        preds = report.model.predict(
            fitter.encoder.encode(small_acc_dataset.archs[:20])
        )
        assert np.all(preds > 0.5) and np.all(preds < 0.9)

    def test_row_formatting(self, fitter, small_acc_dataset):
        report = fitter.fit(small_acc_dataset, "rf")
        text = report.row()
        assert "R2=" in text and "MAE=" in text


class TestDeviceFit:
    def test_throughput_uses_log_transform(self, fitter, small_thr_dataset):
        report = fitter.fit(small_thr_dataset, "xgb")
        assert isinstance(report.model, TransformedTargetRegressor)
        assert report.model.log
        assert report.r2 > 0.8

    def test_device_predictions_positive(self, fitter, small_thr_dataset):
        report = fitter.fit(small_thr_dataset, "xgb")
        preds = report.model.predict(
            fitter.encoder.encode(small_thr_dataset.archs[:20])
        )
        assert np.all(preds > 0)

    def test_mae_in_raw_units(self, fitter, small_thr_dataset):
        report = fitter.fit(small_thr_dataset, "xgb")
        # RTX3090 throughput is in thousands of img/s; raw-unit MAE must not
        # look like a z-score.
        assert report.mae > 1.0


class TestHpoPath:
    def test_hpo_budget_runs_smac(self, small_acc_dataset):
        fitter = SurrogateFitter(hpo_budget=4)
        report = fitter.fit(small_acc_dataset, "rf")
        assert report.r2 > 0.5
        assert set(report.params) == {
            "n_estimators",
            "max_depth",
            "min_samples_leaf",
            "max_features",
        }

    def test_fit_families(self, fitter, small_acc_dataset):
        reports = fitter.fit_families(small_acc_dataset, ("rf", "esvr"))
        assert [r.family for r in reports] == ["rf", "esvr"]
