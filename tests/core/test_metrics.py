"""Metric identities, edge cases, and scipy cross-validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy import stats

from repro.core.metrics import kendall_tau, mae, r2_score, rmse, spearman_rho

finite_floats = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestKendallTau:
    def test_perfect_agreement(self):
        x = np.arange(10, dtype=float)
        assert kendall_tau(x, x) == pytest.approx(1.0)

    def test_perfect_reversal(self):
        x = np.arange(10, dtype=float)
        assert kendall_tau(x, -x) == pytest.approx(-1.0)

    def test_known_small_case(self):
        # 4 concordant, 2 discordant of 6 pairs -> tau = 1/3.
        a = [1, 2, 3, 4]
        b = [1, 4, 2, 3]
        assert kendall_tau(a, b) == pytest.approx(1 / 3)

    @given(
        arrays(np.float64, st.integers(3, 120), elements=finite_floats),
        st.integers(0, 3),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_with_and_without_ties(self, a, round_digits):
        b = np.roll(a, 1) + a
        if round_digits:
            a = np.round(a, round_digits)
            b = np.round(b, round_digits)
        expected = stats.kendalltau(a, b)[0]
        got = kendall_tau(a, b)
        if np.isnan(expected):
            assert got == 0.0  # all-tied degenerate case
        else:
            assert got == pytest.approx(expected, abs=1e-10)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            kendall_tau([1, np.nan], [1, 2])


class TestSpearman:
    @given(arrays(np.float64, st.integers(3, 80), elements=finite_floats))
    @settings(max_examples=40, deadline=None)
    def test_matches_scipy(self, a):
        import warnings

        b = a**2 + np.roll(a, 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", stats.ConstantInputWarning)
            expected = stats.spearmanr(a, b)[0]
        got = spearman_rho(a, b)
        if np.isnan(expected):
            assert got == 0.0
        else:
            assert got == pytest.approx(expected, abs=1e-10)

    def test_monotone_transform_invariance(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=50)
        b = rng.normal(size=50)
        assert spearman_rho(a, b) == pytest.approx(spearman_rho(np.exp(a), b))


class TestR2:
    def test_perfect_prediction(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_worse_than_mean_is_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 2.0, 1.0])) < 0

    def test_constant_target(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0


class TestErrors:
    def test_mae_and_rmse_relationship(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=100)
        pred = y + rng.normal(size=100)
        assert rmse(y, pred) >= mae(y, pred)

    def test_mae_known_value(self):
        assert mae([0.0, 0.0], [1.0, -3.0]) == 2.0

    def test_rmse_known_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))
