"""Unit and property tests for Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.pareto import (
    crowding_distance,
    dominates,
    hypervolume_2d,
    pareto_front,
    pareto_front_indices,
)

point_sets = arrays(
    np.float64,
    st.tuples(st.integers(1, 40), st.just(2)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates([2, 2], [1, 1], [True, True])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1], [True, True])

    def test_tradeoff_no_domination(self):
        assert not dominates([2, 1], [1, 2], [True, True])
        assert not dominates([1, 2], [2, 1], [True, True])

    def test_minimised_objective_direction(self):
        # Second objective minimised (e.g. latency): lower wins.
        assert dominates([2, 1], [2, 3], [True, False])


class TestFront:
    def test_known_front(self):
        pts = np.array([[1, 5], [2, 4], [3, 3], [2, 2], [0, 6]])
        idx = pareto_front_indices(pts, [True, True])
        assert set(idx) == {0, 1, 2, 4}

    def test_duplicates_all_kept(self):
        pts = np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        idx = pareto_front_indices(pts, [True, True])
        assert set(idx) == {0, 1}

    def test_single_point(self):
        assert list(pareto_front_indices([[3.0, 4.0]], [True, True])) == [0]

    def test_empty(self):
        assert len(pareto_front_indices(np.empty((0, 2)), [True, True])) == 0

    def test_latency_direction(self):
        # (acc up, latency down): [0.7, 10] vs [0.6, 5] are both optimal.
        pts = np.array([[0.7, 10.0], [0.6, 5.0], [0.6, 12.0]])
        idx = pareto_front_indices(pts, [True, False])
        assert set(idx) == {0, 1}

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pareto_front_indices(np.ones(3), [True])
        with pytest.raises(ValueError):
            pareto_front_indices(np.ones((3, 2)), [True])

    @given(point_sets)
    @settings(max_examples=60, deadline=None)
    def test_front_invariants(self, pts):
        """No front point dominates another; every non-front point is dominated."""
        maximize = [True, True]
        idx = set(int(i) for i in pareto_front_indices(pts, maximize))
        for i in idx:
            for j in idx:
                assert not dominates(pts[i], pts[j], maximize)
        for k in range(len(pts)):
            if k not in idx:
                assert any(dominates(pts[i], pts[k], maximize) for i in idx)

    @given(point_sets)
    @settings(max_examples=30, deadline=None)
    def test_front_matches_bruteforce(self, pts):
        maximize = [True, True]
        brute = {
            k
            for k in range(len(pts))
            if not any(
                dominates(pts[i], pts[k], maximize)
                for i in range(len(pts))
                if i != k
            )
        }
        fast = set(int(i) for i in pareto_front_indices(pts, maximize))
        assert fast == brute


class TestCrowding:
    def test_extremes_infinite(self):
        pts = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        d = crowding_distance(pts, [True, True])
        assert np.isinf(d[0]) and np.isinf(d[3])
        assert np.isfinite(d[1]) and np.isfinite(d[2])

    def test_empty(self):
        assert crowding_distance(np.empty((0, 2)), [True, True]).shape == (0,)

    def test_identical_points_zero_span(self):
        pts = np.ones((4, 2))
        d = crowding_distance(pts, [True, True])
        assert np.isinf(d).sum() >= 2


class TestHypervolume:
    def test_single_point(self):
        hv = hypervolume_2d([[2.0, 3.0]], [0.0, 0.0], [True, True])
        assert hv == pytest.approx(6.0)

    def test_two_point_staircase(self):
        hv = hypervolume_2d([[1.0, 1.0], [2.0, 0.5]], [0.0, 0.0], [True, True])
        assert hv == pytest.approx(1.5)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume_2d([[2.0, 2.0]], [0.0, 0.0], [True, True])
        more = hypervolume_2d([[2.0, 2.0], [1.0, 1.0]], [0.0, 0.0], [True, True])
        assert base == pytest.approx(more)

    def test_points_below_reference_excluded(self):
        hv = hypervolume_2d([[-1.0, -1.0]], [0.0, 0.0], [True, True])
        assert hv == 0.0

    def test_monotone_in_points(self):
        ref = [0.0, 0.0]
        small = hypervolume_2d([[1.0, 1.0]], ref, [True, True])
        bigger = hypervolume_2d([[1.0, 1.0], [0.5, 2.0]], ref, [True, True])
        assert bigger >= small

    def test_requires_two_objectives(self):
        with pytest.raises(ValueError):
            hypervolume_2d(np.ones((2, 3)), [0, 0, 0], [True, True, True])

    def test_minimised_objective(self):
        # Latency minimised: point (acc=2, lat=1) vs reference (0, 3).
        hv = hypervolume_2d([[2.0, 1.0]], [0.0, 3.0], [True, False])
        assert hv == pytest.approx(4.0)


class TestParetoFrontValues:
    def test_returns_rows(self):
        pts = np.array([[1.0, 5.0], [2.0, 4.0], [0.5, 0.5]])
        front = pareto_front(pts, [True, True])
        assert front.shape == (2, 2)
