"""Golden R2 / Kendall-tau / MAE pins for the Table-1/2 fit protocol.

Exact-equality pins (the pipeline is deterministic end to end) of
``SurrogateFitter`` on a 400-arch sample, one accuracy target (Table 1) and
one device target (Table 2), for every tree family.

The xgb/lgb pins are carried over unchanged from the pre-partition-engine
build: the fused histogram-native engine is bit-identical to the legacy
per-node engine, so these numbers must never move.  The rf pins were
re-captured once when per-tree seeding moved from sequential
``default_rng(seed + i)`` streams to ``SeedSequence(seed).spawn(n)`` — the
derivation that makes parallel fitting order-independent — which redraws
every bootstrap/feature sample (acc R2 0.83470 -> 0.83370, dev R2 0.95351
-> 0.95616; same quality band).  They are exact pins of the new streams and
must be just as stable.
"""

import pytest

from repro.core.dataset import (
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
)
from repro.core.surrogate_fit import SurrogateFitter
from repro.trainsim.schemes import P_STAR

GOLDEN = {
    ("acc", "xgb"): (0.9109961855571463, 0.7871794871794872, 0.00432854152628028),
    ("acc", "lgb"): (0.8973175540840689, 0.7692307692307693, 0.00467496487871504),
    ("acc", "rf"): (0.8336991160506038, 0.6846153846153846, 0.0059902785223482444),
    ("dev", "xgb"): (0.981008403826966, 0.9051282051282051, 299.4472506742752),
    ("dev", "lgb"): (0.9813901138367453, 0.8974358974358975, 295.3279074657823),
    ("dev", "rf"): (0.9561628741757437, 0.8897435897435897, 401.27516034742035),
}


@pytest.fixture(scope="module")
def golden_datasets():
    archs = sample_dataset_archs(400, seed=5)
    return {
        "acc": collect_accuracy_dataset(archs, P_STAR),
        "dev": collect_device_dataset(archs, "a100", metric="throughput"),
    }


@pytest.mark.parametrize(
    "target,family", sorted(GOLDEN), ids=[f"{t}-{f}" for t, f in sorted(GOLDEN)]
)
def test_fit_metrics_match_golden_exactly(golden_datasets, target, family):
    dataset = golden_datasets[target]
    report = SurrogateFitter().fit(dataset, family)
    r2, tau, mae = GOLDEN[(target, family)]
    assert report.r2 == r2
    assert report.kendall == tau
    assert report.mae == mae
