"""Unit tests for the AccelNASBench query interface."""

import json

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.core.reliability import ArtifactIntegrityError
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def bench():
    bench, reports = AccelNASBench.build(
        P_STAR,
        num_archs=250,
        devices={"a100": ("throughput",), "zcu102": ("throughput", "latency")},
        sample_seed=2,
    )
    return bench, reports


class TestBuild:
    def test_reports_cover_all_targets(self, bench):
        _, reports = bench
        assert len(reports) == 4  # accuracy + 3 perf targets
        assert reports[0].dataset == "ANB-Acc"

    def test_targets_listed(self, bench):
        b, _ = bench
        assert b.targets == [
            ("a100", "throughput"),
            ("zcu102", "latency"),
            ("zcu102", "throughput"),
        ]

    def test_meta_records_provenance(self, bench):
        b, _ = bench
        assert b.meta["scheme"] == P_STAR.to_dict()
        assert b.meta["num_archs"] == 250


class TestQuery:
    def test_accuracy_in_range(self, bench, some_archs):
        b, _ = bench
        for arch in some_archs[:10]:
            assert 0.5 < b.query_accuracy(arch) < 0.9

    def test_performance_positive(self, bench, some_archs):
        b, _ = bench
        for arch in some_archs[:5]:
            assert b.query_performance(arch, "a100", "throughput") > 0
            assert b.query_performance(arch, "zcu102", "latency") > 0

    def test_unknown_target_rejected(self, bench, some_archs):
        b, _ = bench
        with pytest.raises(KeyError):
            b.query_performance(some_archs[0], "tpuv3", "throughput")

    def test_query_bundles_both_objectives(self, bench, some_archs):
        b, _ = bench
        result = b.query(some_archs[0], device="a100")
        assert result.device == "a100"
        assert result.metric == "throughput"
        assert result.performance is not None
        accuracy_only = b.query(some_archs[0])
        assert accuracy_only.performance is None
        assert accuracy_only.metric is None

    def test_query_batch_matches_single(self, bench, some_archs):
        b, _ = bench
        batch = b.query_accuracy_batch(some_archs[:5])
        singles = [b.query_accuracy(a) for a in some_archs[:5]]
        assert np.allclose(batch, singles)

    def test_query_batch_returns_query_results(self, bench, some_archs):
        b, _ = bench
        results = b.query_batch(some_archs[:5], device="a100")
        assert len(results) == 5
        for arch, res in zip(some_archs[:5], results):
            assert res.arch == arch
            assert res.device == "a100"
            assert res.metric == "throughput"
            assert res.performance > 0
        acc_only = b.query_batch(some_archs[:3])
        assert all(r.performance is None and r.metric is None for r in acc_only)

    def test_query_encodes_arch_exactly_once(self, bench, some_archs, monkeypatch):
        """Regression: the bi-objective query used to encode twice."""
        b, _ = bench
        calls = {"n": 0}
        original = type(b.encoder).encode

        def counting_encode(self, archs):
            calls["n"] += 1
            return original(self, archs)

        monkeypatch.setattr(type(b.encoder), "encode", counting_encode)
        b.query(some_archs[0], device="a100")
        assert calls["n"] == 1
        b.query(some_archs[1])
        assert calls["n"] == 2

    def test_query_correlates_with_simulated_truth(self, bench, some_archs, trainer):
        from repro.core.metrics import kendall_tau

        b, _ = bench
        archs = some_archs[:40]
        predicted = [b.query_accuracy(a) for a in archs]
        true = [trainer.expected_top1(a, P_STAR) for a in archs]
        assert kendall_tau(predicted, true) > 0.5


class TestPersistence:
    def test_save_load_roundtrip(self, bench, some_archs, tmp_path):
        b, _ = bench
        path = tmp_path / "bench.json"
        b.save(path)
        loaded = AccelNASBench.load(path)
        assert loaded.targets == b.targets
        assert loaded.meta == b.meta
        for arch in some_archs[:5]:
            assert loaded.query_accuracy(arch) == pytest.approx(
                b.query_accuracy(arch)
            )
            assert loaded.query_performance(
                arch, "zcu102", "latency"
            ) == pytest.approx(b.query_performance(arch, "zcu102", "latency"))

    def test_save_is_byte_stable(self, bench, tmp_path):
        """Saving the same benchmark twice produces identical bytes."""
        b, _ = bench
        first, second = tmp_path / "one.json", tmp_path / "two.json"
        b.save(first)
        b.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_save_load_save_roundtrip_is_byte_stable(self, bench, tmp_path):
        """load(save(bench)) serialises back to the exact same bytes."""
        b, _ = bench
        first, second = tmp_path / "one.json", tmp_path / "two.json"
        b.save(first)
        AccelNASBench.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()


class TestArtifactIntegrity:
    def test_truncated_file_raises_clear_error(self, bench, tmp_path):
        b, _ = bench
        path = tmp_path / "bench.json"
        b.save(path)
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(ArtifactIntegrityError, match="not valid JSON") as info:
            AccelNASBench.load(path)
        assert str(path) in str(info.value)

    def test_tampered_file_fails_checksum(self, bench, tmp_path):
        b, _ = bench
        path = tmp_path / "bench.json"
        b.save(path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["meta"]["num_archs"] = 999999
        path.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(ArtifactIntegrityError, match="sha256 mismatch"):
            AccelNASBench.load(path)

    def test_wrong_schema_version_named_in_error(self, bench, tmp_path):
        b, _ = bench
        path = tmp_path / "bench.json"
        b.save(path)
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = 99
        path.write_text(json.dumps(envelope, sort_keys=True))
        with pytest.raises(
            ArtifactIntegrityError, match="version 99 found, expected 1"
        ):
            AccelNASBench.load(path)

    def test_legacy_raw_payload_rejected(self, tmp_path):
        """Pre-envelope saves fail loudly instead of with a bare KeyError."""
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps({"meta": {}, "perf_models": {}}))
        with pytest.raises(ArtifactIntegrityError, match="envelope"):
            AccelNASBench.load(path)

    def test_valid_envelope_malformed_payload(self, tmp_path):
        from repro.core.benchmark import (
            BENCHMARK_SCHEMA,
            BENCHMARK_SCHEMA_VERSION,
        )
        from repro.core.reliability import write_artifact

        path = tmp_path / "bad.json"
        write_artifact(
            path, {"nonsense": 1}, BENCHMARK_SCHEMA, BENCHMARK_SCHEMA_VERSION
        )
        with pytest.raises(ArtifactIntegrityError, match="malformed benchmark"):
            AccelNASBench.load(path)

    def test_interrupted_save_preserves_previous_artifact(
        self, bench, tmp_path, monkeypatch
    ):
        import os

        b, _ = bench
        path = tmp_path / "bench.json"
        b.save(path)
        before = path.read_bytes()
        monkeypatch.setattr(
            os, "replace", lambda src, dst: (_ for _ in ()).throw(OSError("kill"))
        )
        with pytest.raises(OSError):
            b.save(path)
        assert path.read_bytes() == before
