"""Unit tests for the training-proxy search (Eq. 1)."""

import numpy as np
import pytest

from repro.core.proxy_search import (
    TrainingProxySearch,
    flops_stratified_grid,
)
from repro.nn.counters import count_graph
from repro.searchspace.model_builder import build_model
from repro.trainsim.schemes import P_STAR, REFERENCE_SCHEME, TrainingScheme


@pytest.fixture(scope="module")
def search():
    grid = flops_stratified_grid(n=12, seed=0, pool_size=200)
    return TrainingProxySearch(grid_archs=grid, t_spec=3.5, seeds=(0,))


class TestStratifiedGrid:
    def test_size_and_uniqueness(self):
        grid = flops_stratified_grid(n=10, seed=1, pool_size=150)
        assert len(grid) == 10
        assert len(set(grid)) == 10

    def test_spans_flops_range(self):
        grid = flops_stratified_grid(n=10, seed=2, pool_size=300)
        flops = [count_graph(build_model(a)).flops for a in grid]
        assert max(flops) > 2 * min(flops)

    def test_needs_two_archs(self):
        with pytest.raises(ValueError):
            flops_stratified_grid(n=1)

    def test_deterministic(self):
        assert flops_stratified_grid(n=8, seed=3, pool_size=100) == (
            flops_stratified_grid(n=8, seed=3, pool_size=100)
        )


class TestEvaluation:
    def test_reference_scheme_is_self_correlated(self, search):
        ev = search.evaluate_scheme(REFERENCE_SCHEME)
        assert ev.tau == pytest.approx(1.0)
        assert ev.speedup == pytest.approx(1.0)
        assert not ev.feasible  # reference is way over t_spec

    def test_p_star_evaluation(self, search):
        ev = search.evaluate_scheme(P_STAR)
        assert 0.8 < ev.tau <= 1.0
        assert ev.speedup > 4
        assert ev.feasible

    def test_cheaper_scheme_has_lower_tau(self, search):
        cheap = TrainingScheme(1024, 15, 0, 0, 96, 96)
        assert search.evaluate_scheme(cheap).tau < search.evaluate_scheme(P_STAR).tau

    def test_t_spec_validated(self):
        with pytest.raises(ValueError):
            TrainingProxySearch(t_spec=0.0)


class TestSearch:
    def test_infeasible_budget_raises(self, search):
        strict = TrainingProxySearch(
            grid_archs=search.grid_archs, t_spec=1e-6, seeds=(0,)
        )
        with pytest.raises(RuntimeError, match="no feasible scheme"):
            strict.search(candidates=[P_STAR])

    def test_explicit_candidates(self, search):
        worse = TrainingScheme(1024, 15, 0, 0, 96, 96)
        result = search.search(candidates=[worse, P_STAR])
        assert result.best_scheme == P_STAR
        assert result.num_evaluated == 2

    def test_early_stop_with_verification(self, search):
        # P_STAR genuinely has high tau, so it should pass verification and
        # stop the search before the bad scheme is reached.
        bad = TrainingScheme(1024, 15, 0, 0, 96, 96)
        result = search.search(
            candidates=[P_STAR, bad], early_stop_tau=0.85
        )
        assert result.best_scheme == P_STAR
        assert result.num_evaluated == 1
        assert result.best.verified_tau is not None

    def test_lucky_scheme_rejected_by_verification(self, search):
        """A scheme whose grid tau clears the bar but verification does not
        must not stop the search."""
        bad = TrainingScheme(1024, 15, 0, 0, 96, 192)
        ev = search.evaluate_scheme(bad)
        threshold = ev.tau - 0.001  # bar the bad scheme *would* clear on grid
        verified = search._verified_tau(bad)
        if verified >= threshold - 0.03:
            pytest.skip("verification batch happened to rank the scheme well")
        result = search.search(
            candidates=[bad, P_STAR], early_stop_tau=threshold
        )
        assert result.best_scheme == P_STAR

    def test_max_evaluations_cap(self, search):
        schemes = [
            TrainingScheme(512, e, 0, 0, 224, 224) for e in (20, 30, 40, 50)
        ]
        result = search.search(candidates=schemes, max_evaluations=2)
        assert result.num_evaluated == 2


class TestValidateProtocol:
    def test_validation_keys_and_tau(self, search, some_archs):
        validation = search.validate(P_STAR, some_archs[:15], seeds=(0, 1))
        assert set(validation) == {
            "proxy_mean",
            "proxy_std",
            "reference_mean",
            "reference_std",
            "tau",
        }
        assert len(validation["proxy_mean"]) == 15
        assert np.all(validation["proxy_std"] >= 0)
        assert -1 <= validation["tau"] <= 1

    def test_validation_tau_high_for_p_star(self, search, some_archs):
        validation = search.validate(P_STAR, some_archs[:30], seeds=(0, 1, 2))
        assert validation["tau"] > 0.75
