"""Batched-objective equivalence: population fast paths change nothing.

Every optimizer that prefetches populations through a
:class:`~repro.optimizers.base.BatchedObjective` must record exactly the
same history (same archs, same values, same order) as the same run with the
scalar per-arch objective.
"""

import numpy as np
import pytest

from repro.core.benchmark import AccelNASBench
from repro.optimizers import (
    BatchedObjective,
    LocalSearch,
    Nsga2,
    RandomSearch,
    RegularizedEvolution,
    Reinforce,
)
from repro.optimizers.base import prefetch
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def bench():
    built, _ = AccelNASBench.build(
        P_STAR,
        num_archs=120,
        devices={"zcu102": ("throughput",)},
        sample_seed=11,
        family="rf",
    )
    return built


def assert_same_history(scalar_result, batched_result):
    assert scalar_result.archs == batched_result.archs
    assert scalar_result.values == batched_result.values


class TestBatchedObjective:
    def test_scalar_call_matches_batch(self, bench, some_archs):
        objective = bench.accuracy_objective()
        batched = objective.evaluate_batch(some_archs[:8])
        assert batched == [bench.query_accuracy(a) for a in some_archs[:8]]
        # Second pass is served from the memo: no new batch calls.
        calls_before = objective.num_batch_calls
        assert objective(some_archs[3]) == batched[3]
        assert objective.num_batch_calls == calls_before

    def test_prefetch_deduplicates(self, bench, some_archs):
        objective = bench.accuracy_objective()
        objective.prefetch([some_archs[0], some_archs[0], some_archs[1]])
        assert objective.num_batch_calls == 1
        objective.prefetch(some_archs[:2])
        assert objective.num_batch_calls == 1  # fully memoised

    def test_prefetch_helper_ignores_plain_callables(self, some_archs):
        prefetch(lambda a: 0.0, some_archs[:3])  # must not raise

    def test_scalar_fallback_counted(self, bench, some_archs):
        objective = BatchedObjective(bench.query_accuracy_batch)
        objective(some_archs[0])
        assert objective.num_scalar_fallbacks == 1


class TestOptimizerEquivalence:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomSearch(seed=3),
            lambda: RegularizedEvolution(seed=3, population_size=12, sample_size=4),
            lambda: LocalSearch(seed=3),
        ],
        ids=["random-search", "evolution", "local-search"],
    )
    def test_uniobjective_history_identical(self, bench, factory):
        scalar = factory().run(bench.query_accuracy, budget=40)
        batched = factory().run(bench.accuracy_objective(), budget=40)
        assert_same_history(scalar, batched)

    def test_nsga2_history_identical(self, bench):
        def run(acc_fn, perf_fn):
            return Nsga2(seed=5, population_size=8).run_biobjective(
                accuracy_fn=acc_fn,
                perf_fn=perf_fn,
                budget=32,
                metric="throughput",
                device="zcu102",
            )

        scalar = run(
            bench.query_accuracy,
            lambda a: bench.query_performance(a, "zcu102", "throughput"),
        )
        batched = run(
            bench.accuracy_objective(),
            bench.performance_objective("zcu102", "throughput"),
        )
        assert scalar.archs == batched.archs
        assert scalar.accuracies == batched.accuracies
        assert scalar.performances == batched.performances

    def test_reinforce_history_identical(self, bench):
        def run(acc_fn, perf_fn):
            return Reinforce(seed=5, batch_size=4).run_biobjective(
                accuracy_fn=acc_fn,
                perf_fn=perf_fn,
                target=700.0,
                budget=32,
                metric="throughput",
                device="zcu102",
            )

        scalar = run(
            bench.query_accuracy,
            lambda a: bench.query_performance(a, "zcu102", "throughput"),
        )
        batched = run(
            bench.accuracy_objective(),
            bench.performance_objective("zcu102", "throughput"),
        )
        assert scalar.archs == batched.archs
        assert scalar.accuracies == batched.accuracies
        assert scalar.performances == batched.performances
        assert scalar.rewards == batched.rewards

    def test_batched_run_uses_population_batches(self, bench):
        objective = bench.accuracy_objective()
        RandomSearch(seed=9).run(objective, budget=30)
        assert objective.num_batch_calls == 1
        assert objective.num_scalar_fallbacks == 0
