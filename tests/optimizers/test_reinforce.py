"""Unit tests for REINFORCE and the MnasNet reward."""

import numpy as np
import pytest

from repro.optimizers.reinforce import (
    BiObjectiveResult,
    CategoricalPolicy,
    Reinforce,
    mnas_reward,
)
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim.schemes import P_STAR


class TestMnasReward:
    def test_at_target_reward_is_accuracy(self):
        assert mnas_reward(0.7, 100.0, 100.0) == pytest.approx(0.7)

    def test_throughput_above_target_rewarded(self):
        assert mnas_reward(0.7, 200.0, 100.0) > 0.7

    def test_latency_above_target_penalised(self):
        fast = mnas_reward(0.7, 50.0, 100.0, maximize_perf=False)
        slow = mnas_reward(0.7, 200.0, 100.0, maximize_perf=False)
        assert fast > 0.7 > slow

    def test_power_law_constant_relative_gain(self):
        # The w=-0.07 exponent gives a constant ~5% reward ratio per
        # throughput doubling — soft influence, never dominating accuracy.
        r1 = mnas_reward(0.7, 200.0, 100.0)
        r2 = mnas_reward(0.7, 400.0, 100.0)
        assert r2 / r1 == pytest.approx(r1 / 0.7)
        assert r1 / 0.7 < 1.06

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            mnas_reward(-0.1, 100.0, 100.0)
        with pytest.raises(ValueError):
            mnas_reward(0.7, 0.0, 100.0)
        with pytest.raises(ValueError):
            mnas_reward(0.7, 100.0, 0.0)


class TestCategoricalPolicy:
    def test_initial_policy_is_uniform(self):
        space = MnasNetSearchSpace(seed=0)
        policy = CategoricalPolicy(space, seed=0)
        # Initial entropy equals sum of log|choices| per decision.
        expected = 7 * (np.log(3) + np.log(2) + np.log(3) + np.log(2))
        assert policy.entropy() == pytest.approx(expected)

    def test_sample_is_space_member(self):
        space = MnasNetSearchSpace(seed=0)
        policy = CategoricalPolicy(space, seed=1)
        for _ in range(10):
            assert space.contains(policy.sample())

    def test_positive_advantage_raises_probability(self):
        space = MnasNetSearchSpace(seed=0)
        policy = CategoricalPolicy(space, seed=2)
        arch = policy.sample()
        for _ in range(40):
            policy.update(arch, advantage=1.0, lr=0.3)
        assert policy.mode() == arch
        assert policy.entropy() < 7 * (np.log(3) + np.log(2) + np.log(3) + np.log(2))

    def test_negative_advantage_lowers_probability(self):
        space = MnasNetSearchSpace(seed=0)
        policy = CategoricalPolicy(space, seed=3)
        arch = policy.sample()
        for _ in range(40):
            policy.update(arch, advantage=-1.0, lr=0.3)
        assert policy.mode() != arch


class TestReinforceUniObjective:
    def test_budget_respected(self, trainer):
        opt = Reinforce(seed=0, batch_size=4)
        result = opt.run(lambda a: trainer.expected_top1(a, P_STAR), 50)
        assert result.num_evaluations == 50

    def test_improves_on_separable_objective(self):
        # Reward = number of SE stages: trivially separable, REINFORCE must
        # learn to switch SE on everywhere.
        opt = Reinforce(seed=0, learning_rate=0.3, batch_size=4)
        result = opt.run(lambda a: float(sum(a.se)), 400)
        tail = result.values[-40:]
        assert np.mean(tail) > 5.5  # near-maximal (7)

    def test_baseline_decay_validated(self):
        with pytest.raises(ValueError):
            Reinforce(baseline_decay=1.0)

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            Reinforce().run(lambda a: 0.0, 0)


class TestReinforceBiObjective:
    def _fns(self, trainer):
        from repro.hwsim.measure import MeasurementHarness
        from repro.hwsim.registry import get_device

        harness = MeasurementHarness(get_device("zcu102"))
        return (
            lambda a: trainer.expected_top1(a, P_STAR),
            lambda a: harness.measure_throughput(a),
        )

    def test_records_all_fields(self, trainer):
        acc_fn, perf_fn = self._fns(trainer)
        opt = Reinforce(seed=0, batch_size=4)
        result = opt.run_biobjective(
            acc_fn, perf_fn, target=700.0, budget=40, metric="throughput",
            device="zcu102",
        )
        assert len(result.archs) == 40
        assert len(result.accuracies) == 40
        assert len(result.performances) == 40
        assert len(result.rewards) == 40
        assert result.device == "zcu102"

    def test_pareto_indices_are_nondominated(self, trainer):
        acc_fn, perf_fn = self._fns(trainer)
        opt = Reinforce(seed=1, batch_size=4)
        result = opt.run_biobjective(
            acc_fn, perf_fn, target=700.0, budget=60, metric="throughput"
        )
        idx = result.pareto_indices()
        assert len(idx) >= 1
        pts = [(result.accuracies[i], result.performances[i]) for i in idx]
        for a in pts:
            for b in pts:
                assert not (a[0] > b[0] and a[1] > b[1]) or a == b or True
        # Stronger check: no front member dominated by any history point.
        for i in idx:
            for j in range(len(result.archs)):
                dominated = (
                    result.accuracies[j] >= result.accuracies[i]
                    and result.performances[j] >= result.performances[i]
                    and (
                        result.accuracies[j] > result.accuracies[i]
                        or result.performances[j] > result.performances[i]
                    )
                )
                assert not dominated

    def test_latency_metric_flips_direction(self, trainer):
        from repro.hwsim.measure import MeasurementHarness
        from repro.hwsim.registry import get_device

        harness = MeasurementHarness(get_device("zcu102"))
        opt = Reinforce(seed=2, batch_size=4)
        result = opt.run_biobjective(
            lambda a: trainer.expected_top1(a, P_STAR),
            lambda a: harness.measure_latency(a),
            target=6.0,
            budget=40,
            metric="latency",
        )
        idx = result.pareto_indices()
        # Front must include the minimum-latency point.
        min_lat = int(np.argmin(result.performances))
        assert min_lat in set(int(i) for i in idx)

    def test_unknown_metric_rejected(self, trainer):
        acc_fn, perf_fn = self._fns(trainer)
        with pytest.raises(ValueError):
            Reinforce().run_biobjective(
                acc_fn, perf_fn, target=1.0, budget=4, metric="power"
            )

    def test_pareto_points_returns_triples(self, trainer):
        acc_fn, perf_fn = self._fns(trainer)
        result = Reinforce(seed=3, batch_size=4).run_biobjective(
            acc_fn, perf_fn, target=700.0, budget=30
        )
        for arch, acc, perf in result.pareto_points():
            assert 0 <= acc <= 1
            assert perf > 0
