"""Unit tests for the extension optimizers (NSGA-II, BO-NAS)."""

import numpy as np
import pytest

from repro.core.pareto import dominates
from repro.optimizers import BoNas, Nsga2, RandomSearch, non_dominated_sort
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def acc_fn(trainer):
    return lambda a: trainer.expected_top1(a, P_STAR)


@pytest.fixture(scope="module")
def thr_fn():
    from repro.hwsim.measure import MeasurementHarness
    from repro.hwsim.registry import get_device

    harness = MeasurementHarness(get_device("zcu102"))
    return lambda a: harness.measure_throughput(a)


class TestNonDominatedSort:
    def test_fronts_partition_points(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(size=(30, 2))
        fronts = non_dominated_sort(pts, [True, True])
        combined = np.concatenate(fronts)
        assert sorted(combined.tolist()) == list(range(30))

    def test_first_front_is_pareto(self):
        pts = np.array([[1, 5], [2, 4], [3, 3], [2, 2], [0, 6]], dtype=float)
        fronts = non_dominated_sort(pts, [True, True])
        assert set(fronts[0].tolist()) == {0, 1, 2, 4}

    def test_later_fronts_dominated_by_earlier(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(size=(25, 2))
        fronts = non_dominated_sort(pts, [True, True])
        for k in range(1, len(fronts)):
            for j in fronts[k]:
                assert any(
                    dominates(pts[i], pts[j], [True, True]) for i in fronts[k - 1]
                )


class TestNsga2:
    def test_budget_respected(self, acc_fn, thr_fn):
        result = Nsga2(seed=0, population_size=16).run_biobjective(
            acc_fn, thr_fn, budget=80, device="zcu102"
        )
        assert len(result.archs) == 80

    def test_front_spans_tradeoff(self, acc_fn, thr_fn):
        result = Nsga2(seed=0, population_size=20).run_biobjective(
            acc_fn, thr_fn, budget=160
        )
        front = result.pareto_points()
        assert len(front) >= 3
        accs = [p[1] for p in front]
        assert max(accs) - min(accs) > 0.01

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            Nsga2(population_size=2)
        with pytest.raises(ValueError):
            Nsga2(mutation_rate=1.5)

    def test_budget_must_cover_population(self, acc_fn, thr_fn):
        with pytest.raises(ValueError):
            Nsga2(population_size=40).run_biobjective(acc_fn, thr_fn, budget=10)

    def test_metric_validated(self, acc_fn, thr_fn):
        with pytest.raises(ValueError):
            Nsga2().run_biobjective(acc_fn, thr_fn, budget=50, metric="power")

    def test_uniobjective_fallback(self, acc_fn):
        result = Nsga2(seed=0, population_size=16).run(acc_fn, 48)
        assert result.num_evaluations == 48
        assert result.best_value > 0.7

    def test_crossover_mixes_parents(self):
        from repro.searchspace.mnasnet import MnasNetSearchSpace

        space = MnasNetSearchSpace(seed=0)
        opt = Nsga2(space=space, seed=0)
        rng = np.random.default_rng(3)
        a, b = space.sample(rng), space.sample(rng)
        child = opt._crossover(a, b, rng)
        da, db = space.arch_to_decisions(a), space.arch_to_decisions(b)
        dc = space.arch_to_decisions(child)
        assert all(dc[k] in (da[k], db[k]) for k in dc)


class TestBoNas:
    def test_budget_and_uniqueness(self, acc_fn):
        result = BoNas(seed=0, n_init=8).run(acc_fn, 40)
        assert result.num_evaluations == 40
        assert len(set(result.archs)) == 40

    def test_beats_or_matches_random_search(self, acc_fn):
        budget = 100
        seeds = (0, 2, 3)
        bo = np.mean(
            [BoNas(seed=s, n_init=16).run(acc_fn, budget).best_value for s in seeds]
        )
        rs = np.mean(
            [RandomSearch(seed=s).run(acc_fn, budget).best_value for s in seeds]
        )
        assert bo >= rs - 0.002

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            BoNas(n_init=1)
        with pytest.raises(ValueError):
            BoNas(refit_every=0)

    def test_budget_validated(self, acc_fn):
        with pytest.raises(ValueError):
            BoNas().run(acc_fn, 0)

    def test_budget_smaller_than_init(self, acc_fn):
        result = BoNas(seed=0, n_init=16).run(acc_fn, 5)
        assert result.num_evaluations == 5
