"""Unit tests for RS / RE / local search / successive halving."""

import numpy as np
import pytest

from repro.optimizers import (
    LocalSearch,
    RandomSearch,
    RegularizedEvolution,
    SuccessiveHalving,
)
from repro.optimizers.base import SearchResult
from repro.trainsim.schemes import P_STAR


@pytest.fixture(scope="module")
def objective(trainer):
    def f(arch):
        return trainer.expected_top1(arch, P_STAR)

    return f


class TestSearchResult:
    def test_incumbent_curve_monotone(self):
        result = SearchResult()
        from repro.searchspace.mnasnet import MnasNetSearchSpace

        space = MnasNetSearchSpace(seed=0)
        for v in (0.5, 0.3, 0.7, 0.6):
            result.record(space.sample(), v)
        curve = result.incumbent_curve()
        assert np.array_equal(curve, [0.5, 0.5, 0.7, 0.7])
        assert result.best_value == 0.7

    def test_empty_result_rejects_queries(self):
        result = SearchResult()
        with pytest.raises(ValueError):
            _ = result.best_value
        with pytest.raises(ValueError):
            _ = result.best_arch


class TestRandomSearch:
    def test_budget_and_uniqueness(self, objective):
        result = RandomSearch(seed=0).run(objective, 60)
        assert result.num_evaluations == 60
        assert len(set(result.archs)) == 60

    def test_deterministic(self, objective):
        a = RandomSearch(seed=4).run(objective, 20)
        b = RandomSearch(seed=4).run(objective, 20)
        assert a.archs == b.archs

    def test_budget_validated(self, objective):
        with pytest.raises(ValueError):
            RandomSearch().run(objective, 0)


class TestRegularizedEvolution:
    def test_improves_over_random_phase(self, objective):
        result = RegularizedEvolution(
            seed=0, population_size=20, sample_size=5
        ).run(objective, 300)
        curve = result.incumbent_curve()
        assert curve[-1] > curve[19]  # improved beyond the random init

    def test_beats_random_search(self, objective):
        budget = 400
        re_best = np.mean(
            [
                RegularizedEvolution(seed=s, population_size=20, sample_size=5)
                .run(objective, budget)
                .best_value
                for s in range(2)
            ]
        )
        rs_best = np.mean(
            [RandomSearch(seed=s).run(objective, budget).best_value for s in range(2)]
        )
        assert re_best > rs_best - 0.002

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            RegularizedEvolution(population_size=1)
        with pytest.raises(ValueError):
            RegularizedEvolution(population_size=10, sample_size=11)

    def test_budget_smaller_than_population(self, objective):
        result = RegularizedEvolution(seed=0, population_size=50).run(objective, 10)
        assert result.num_evaluations == 10


class TestLocalSearch:
    def test_runs_within_budget(self, objective):
        result = LocalSearch(seed=0).run(objective, 150)
        assert result.num_evaluations == 150

    def test_no_duplicate_evaluations(self, objective):
        result = LocalSearch(seed=0).run(objective, 150)
        assert len(set(result.archs)) == 150

    def test_reaches_local_optimum_quality(self, objective):
        result = LocalSearch(seed=1).run(objective, 300)
        assert result.best_value > 0.74


class TestSuccessiveHalving:
    def test_rung_accounting(self, trainer):
        from repro.trainsim.schemes import TrainingScheme

        def fidelity_objective(arch, epochs):
            scheme = TrainingScheme(512, epochs, 0, 0, 160, 160)
            return trainer.train(arch, scheme, seed=0).top1

        sh = SuccessiveHalving(seed=0, eta=3, fidelities=(10, 30))
        result = sh.run_multifidelity(fidelity_objective, initial_population=18)
        # 18 at fidelity 10, then 6 at fidelity 30.
        assert result.num_evaluations == 18 + 6

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            SuccessiveHalving(eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalving(fidelities=(30, 10))

    def test_population_validated(self, trainer):
        sh = SuccessiveHalving(seed=0, eta=3)
        with pytest.raises(ValueError):
            sh.run_multifidelity(lambda a, f: 0.0, initial_population=2)

    def test_single_fidelity_fallback(self, objective):
        result = SuccessiveHalving(seed=0).run(objective, 12)
        assert result.num_evaluations == 12
