"""Unit tests for Hyperband."""

import pytest

from repro.optimizers.hyperband import Hyperband
from repro.trainsim.schemes import TrainingScheme


@pytest.fixture(scope="module")
def fidelity_objective(trainer):
    def objective(arch, epochs):
        scheme = TrainingScheme(512, max(epochs, 5), 0, 0, 160, 160)
        return trainer.train(arch, scheme, seed=0).top1

    return objective


class TestBrackets:
    def test_bracket_structure(self):
        hb = Hyperband(max_fidelity=81, eta=3, min_fidelity=1)
        plans = hb.brackets()
        assert len(plans) == 5  # s_max = 4
        for rungs in plans:
            # Populations shrink, fidelities grow within a bracket.
            ns = [n for n, _ in rungs]
            rs = [r for _, r in rungs]
            assert ns == sorted(ns, reverse=True)
            assert rs == sorted(rs)
            assert rs[-1] == 81

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            Hyperband(eta=1)
        with pytest.raises(ValueError):
            Hyperband(max_fidelity=10, min_fidelity=20)


class TestRun:
    def test_multifidelity_run_records_everything(self, fidelity_objective):
        hb = Hyperband(seed=0, max_fidelity=45, eta=3, min_fidelity=5)
        result = hb.run_multifidelity(fidelity_objective)
        expected = sum(
            sum(n for n, _ in rungs) for rungs in hb.brackets()
        )
        assert result.num_evaluations == expected
        assert result.best_value > 0.7

    def test_single_fidelity_fallback(self, fidelity_objective, trainer):
        hb = Hyperband(seed=0)
        result = hb.run(lambda a: trainer.expected_top1(
            a, TrainingScheme(512, 30, 0, 0, 160, 160)), 12)
        assert result.num_evaluations == 12

    def test_deterministic(self, fidelity_objective):
        a = Hyperband(seed=3, max_fidelity=27, eta=3, min_fidelity=3).run_multifidelity(
            fidelity_objective
        )
        b = Hyperband(seed=3, max_fidelity=27, eta=3, min_fidelity=3).run_multifidelity(
            fidelity_objective
        )
        assert a.archs == b.archs
