"""Unit tests for the measurement harness (warmup/averaging protocol)."""

import numpy as np
import pytest

from repro.hwsim.measure import (
    DEFAULT_PROTOCOLS,
    MeasurementHarness,
    MeasurementProtocol,
)
from repro.hwsim.registry import get_device
from repro.searchspace.model_builder import build_model


class TestProtocolValidation:
    def test_defaults_match_paper(self):
        assert DEFAULT_PROTOCOLS["tpuv3"].timed_runs == 4  # TPUs average 4
        assert DEFAULT_PROTOCOLS["a100"].timed_runs == 2  # GPUs average 2

    def test_rejects_zero_timed_runs(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(timed_runs=0)

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(warmup_runs=-1)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            MeasurementProtocol(noise_std=-0.1)


class TestMeasurement:
    def test_deterministic(self, some_archs):
        arch = some_archs[0]
        h = MeasurementHarness(get_device("a100"))
        assert h.measure_throughput(arch) == h.measure_throughput(arch)
        h2 = MeasurementHarness(get_device("zcu102"))
        assert h2.measure_latency(arch) == h2.measure_latency(arch)

    def test_close_to_clean_model_value(self, some_archs):
        arch = some_archs[0]
        device = get_device("a100")
        h = MeasurementHarness(device)
        clean = device.throughput_ips(build_model(arch))
        measured = h.measure_throughput(arch)
        assert abs(measured - clean) / clean < 0.05

    def test_warmup_runs_are_discarded(self, some_archs):
        """A huge warmup slowdown must not leak into the measured value."""
        arch = some_archs[0]
        device = get_device("a100")
        gentle = MeasurementHarness(
            device, MeasurementProtocol(warmup_runs=2, timed_runs=2, warmup_slowdown=1.1)
        )
        brutal = MeasurementHarness(
            device, MeasurementProtocol(warmup_runs=2, timed_runs=2, warmup_slowdown=50.0)
        )
        assert gentle.measure_throughput(arch) == pytest.approx(
            brutal.measure_throughput(arch)
        )

    def test_latency_lower_is_slower_with_warmup_kept(self, some_archs):
        """With zero warmup runs the warmup samples are never generated."""
        arch = some_archs[0]
        device = get_device("zcu102")
        h = MeasurementHarness(
            device, MeasurementProtocol(warmup_runs=0, timed_runs=4, noise_std=0.0)
        )
        clean = device.latency_ms(build_model(arch))
        assert h.measure_latency(arch) == pytest.approx(clean)

    def test_noise_scale_respected(self, some_archs):
        arch = some_archs[0]
        device = get_device("rtx3090")
        noisy = MeasurementHarness(
            device, MeasurementProtocol(warmup_runs=0, timed_runs=1, noise_std=0.2)
        )
        quiet = MeasurementHarness(
            device, MeasurementProtocol(warmup_runs=0, timed_runs=1, noise_std=0.0)
        )
        clean = quiet.measure_throughput(arch)
        values = [
            MeasurementHarness(
                device,
                MeasurementProtocol(warmup_runs=r, timed_runs=1, noise_std=0.2),
            ).measure_throughput(arch)
            for r in range(4)  # different run indices -> different jitter
        ]
        assert np.std(values) > 0
        assert quiet.measure_throughput(arch) == clean

    def test_tpu_warmup_cost_reported(self):
        tpu = MeasurementHarness(get_device("tpuv3"))
        gpu = MeasurementHarness(get_device("a100"))
        assert tpu.warmup_cost_s() > 10  # XLA compilation
        assert gpu.warmup_cost_s() == 0.0

    def test_distinct_archs_distinct_measurements(self, some_archs):
        h = MeasurementHarness(get_device("vck190"))
        values = {h.measure_throughput(a) for a in some_archs[:10]}
        assert len(values) == 10


class TestFaultInjection:
    def test_timeout_fault_raises(self, some_archs):
        from repro.core.reliability import FaultPlan, FaultSpec, MeasurementTimeout

        arch = some_archs[0]
        h = MeasurementHarness(
            get_device("a100"),
            fault_plan=FaultPlan([FaultSpec("timeout", keys=[arch.to_string()])]),
        )
        with pytest.raises(MeasurementTimeout):
            h.measure_throughput(arch)
        assert h.measure_throughput(some_archs[1]) > 0

    def test_spike_fault_scales_measurement(self, some_archs):
        from repro.core.reliability import FaultPlan, FaultSpec

        arch = some_archs[0]
        clean = MeasurementHarness(get_device("a100")).measure_throughput(arch)
        spiky = MeasurementHarness(
            get_device("a100"),
            fault_plan=FaultPlan([FaultSpec("spike", spike_factor=25.0)]),
        )
        assert spiky.measure_throughput(arch) == pytest.approx(clean * 25.0)

    def test_attempt_does_not_change_clean_value(self, some_archs):
        arch = some_archs[0]
        h = MeasurementHarness(get_device("zcu102"))
        assert h.measure_latency(arch, attempt=0) == h.measure_latency(
            arch, attempt=5
        )
