"""Unit tests for the batch-size sweep analysis."""

import pytest

from repro.hwsim.batch_sweep import BatchSweep, sweep_batches
from repro.hwsim.registry import get_device
from repro.searchspace.baselines import EFFICIENTNET_B0


@pytest.fixture(scope="module")
def a100_sweep():
    return sweep_batches(EFFICIENTNET_B0.arch, get_device("a100"))


class TestSweep:
    def test_points_ordered(self, a100_sweep):
        batches = [p.batch for p in a100_sweep.points]
        assert batches == sorted(batches)

    def test_throughput_monotone_nondecreasing(self, a100_sweep):
        thr = [p.throughput_ips for p in a100_sweep.points]
        assert all(b >= a * 0.99 for a, b in zip(thr, thr[1:]))

    def test_latency_monotone_increasing(self, a100_sweep):
        lat = [p.latency_ms for p in a100_sweep.points]
        assert lat == sorted(lat)

    def test_batching_helps_substantially_on_gpu(self, a100_sweep):
        thr = {p.batch: p.throughput_ips for p in a100_sweep.points}
        assert thr[256] > 5 * thr[1]

    def test_knee_reaches_target_fraction(self, a100_sweep):
        knee = a100_sweep.knee(0.9)
        assert knee.throughput_ips >= 0.9 * a100_sweep.saturated_throughput
        # And is the *smallest* such batch.
        for p in a100_sweep.points:
            if p.batch < knee.batch:
                assert p.throughput_ips < 0.9 * a100_sweep.saturated_throughput

    def test_knee_fraction_validated(self, a100_sweep):
        with pytest.raises(ValueError):
            a100_sweep.knee(0.0)

    def test_batches_validated(self):
        with pytest.raises(ValueError):
            sweep_batches(EFFICIENTNET_B0.arch, get_device("a100"), batches=(8, 4))

    def test_report_marks_knee(self, a100_sweep):
        text = a100_sweep.report()
        assert "knee" in text and "a100" in text

    def test_fpga_knees_earlier_than_gpu(self):
        fpga = sweep_batches(EFFICIENTNET_B0.arch, get_device("zcu102"))
        gpu_knee = sweep_batches(
            EFFICIENTNET_B0.arch, get_device("a100")
        ).knee().batch
        assert fpga.knee().batch <= gpu_knee
