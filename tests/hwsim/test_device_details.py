"""Detailed unit tests of device-model internals."""

import pytest

from repro.hwsim.fpga import make_vck190, make_zcu102
from repro.hwsim.gpu import make_a100, make_rtx3090
from repro.hwsim.tpu import make_tpuv2, make_tpuv3
from repro.nn.layers import Conv2d, Dense, SqueezeExcite, TensorShape
from repro.searchspace.model_builder import build_model


def _pw_conv(cin=64, cout=128, hw=14):
    return Conv2d(
        "pw",
        TensorShape(cin, hw, hw),
        TensorShape(cout, hw, hw),
        kernel_size=1,
    )


def _dw_conv(c=64, hw=14, k=3):
    return Conv2d(
        "dw",
        TensorShape(c, hw, hw),
        TensorShape(c, hw, hw),
        kernel_size=k,
        groups=c,
    )


class TestGpuInternals:
    def test_occupancy_rises_with_work(self):
        gpu = make_a100()
        small = gpu._efficiency("conv_pointwise", 1e6)
        large = gpu._efficiency("conv_pointwise", 1e12)
        assert large > small

    def test_depthwise_rate_far_below_pointwise(self):
        gpu = make_a100()
        dw = _dw_conv(c=128, hw=14)
        pw = _pw_conv(cin=128, cout=128, hw=14)
        dw_rate = dw.macs / gpu.layer_timing(dw, 64).compute_s
        pw_rate = pw.macs / gpu.layer_timing(pw, 64).compute_s
        assert pw_rate > 3 * dw_rate

    def test_pointwise_compute_scales_with_batch(self):
        gpu = make_a100()
        t1 = gpu.layer_timing(_pw_conv(), batch=1)
        t64 = gpu.layer_timing(_pw_conv(), batch=64)
        assert t64.compute_s > t1.compute_s

    def test_se_pays_sync_overhead(self):
        gpu = make_a100()
        shape = TensorShape(64, 14, 14)
        se = SqueezeExcite("se", shape, shape, se_channels=16)
        t = gpu.layer_timing(se, batch=1)
        assert t.overhead_s > gpu.params.kernel_launch_s


class TestTpuInternals:
    def test_mxu_efficiency_favours_128_multiples(self):
        tpu = make_tpuv3()
        aligned = _pw_conv(cin=128, cout=128)
        narrow = _pw_conv(cin=16, cout=16)
        assert tpu._mxu_efficiency(aligned) > 4 * tpu._mxu_efficiency(narrow)

    def test_dense_layer_uses_mxu(self):
        tpu = make_tpuv3()
        fc = Dense("fc", TensorShape(1280, 1, 1), TensorShape(1000, 1, 1))
        t = tpu.layer_timing(fc, batch=128)
        assert t.compute_s > 0

    def test_depthwise_on_vector_unit_is_slow(self):
        tpu = make_tpuv3()
        dw = _dw_conv(c=128, hw=14)
        pw = _pw_conv(cin=128, cout=128, hw=14)
        dw_rate = dw.macs / tpu.layer_timing(dw, 1).compute_s
        pw_rate = pw.macs / tpu.layer_timing(pw, 1).compute_s
        assert pw_rate > 5 * dw_rate

    def test_v3_compiles_longer_than_v2(self):
        assert make_tpuv3().warmup_compile_s > make_tpuv2().warmup_compile_s


class TestFpgaInternals:
    def test_core_rate(self):
        zcu = make_zcu102()
        assert zcu.core_macs_per_s == pytest.approx(4096 * 287e6)

    def test_vck_core_outrates_zcu(self):
        assert make_vck190().core_macs_per_s > 10 * make_zcu102().core_macs_per_s

    def test_se_fallback_scales_with_batch(self):
        zcu = make_zcu102()
        shape = TensorShape(64, 14, 14)
        se = SqueezeExcite("se", shape, shape, se_channels=16)
        t1 = zcu.layer_timing(se, batch=1)
        t8 = zcu.layer_timing(se, batch=8)
        assert t8.overhead_s > 4 * t1.overhead_s

    def test_int8_precision_in_spec(self):
        assert make_zcu102().spec.act_bytes == 1.0
        assert make_zcu102().spec.weight_bytes == 1.0

    def test_latency_uses_single_image(self, tiny_arch):
        zcu = make_zcu102()
        graph = build_model(tiny_arch)
        assert zcu.latency_ms(graph) == pytest.approx(
            zcu.batch_latency_s(graph, 1) * 1e3
        )
