"""Bit-identity of the hwsim device batch kernel and the LRU graph cache."""

import threading

import numpy as np
import pytest

from repro.core.reliability import FaultPlan, FaultSpec, MeasurementTimeout
from repro.hwsim import (
    DeviceBatchKernel,
    MeasurementHarness,
    graph_cache_clear,
    graph_cache_info,
    supports_device,
)
from repro.hwsim.device import AcceleratorModel
from repro.hwsim.measure import _GraphCache
from repro.hwsim.registry import get_device
from repro.searchspace.mnasnet import MnasNetSearchSpace

ALL_DEVICES = ("a100", "rtx3090", "tpuv2", "tpuv3", "zcu102", "vck190")


@pytest.fixture(scope="module")
def archs():
    space = MnasNetSearchSpace()
    return space.sample_batch(24, rng=np.random.default_rng(29))


class TestDeviceBatchKernel:
    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_throughput_matches_scalar(self, archs, name):
        harness = MeasurementHarness(get_device(name))
        batched = harness.measure_batch(archs, "throughput")
        scalar = [harness.measure_throughput(a) for a in archs]
        assert batched.tolist() == scalar

    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_latency_matches_scalar(self, archs, name):
        harness = MeasurementHarness(get_device(name))
        batched = harness.measure_batch(archs, "latency")
        scalar = [harness.measure_latency(a) for a in archs]
        assert batched.tolist() == scalar

    @pytest.mark.parametrize("name", ("a100", "tpuv2", "vck190"))
    def test_explicit_batch_size_matches_scalar(self, archs, name):
        harness = MeasurementHarness(get_device(name))
        batched = harness.measure_batch(archs, "throughput", batch=8)
        scalar = [harness.measure_throughput(a, batch=8) for a in archs]
        assert batched.tolist() == scalar

    def test_kernel_clean_values_match_device(self, archs):
        device = get_device("zcu102")
        kernel = DeviceBatchKernel(device)
        from repro.hwsim.measure import _cached_graph

        thr = kernel.throughput_ips(archs, None, 224)
        lat = kernel.latency_ms(archs, 1, 224)
        for i, arch in enumerate(archs):
            graph = _cached_graph(arch, 224)
            assert thr[i] == device.throughput_ips(graph, None)
            assert lat[i] == device.latency_ms(graph, 1)

    def test_unknown_metric_rejected(self, archs):
        harness = MeasurementHarness(get_device("a100"))
        with pytest.raises(ValueError, match="metric"):
            harness.measure_batch(archs, "power")

    def test_supported_devices(self):
        for name in ALL_DEVICES:
            assert supports_device(get_device(name))


def _make_custom_walk_device():
    from repro.hwsim.device import DeviceSpec, LayerTiming

    class _CustomWalk(AcceleratorModel):
        """Minimal device overriding the base graph walk."""

        def layer_timing(self, layer, batch):
            return LayerTiming(compute_s=1e-6, memory_s=1e-6)

        def batch_latency_s(self, graph, batch=None):
            return 1e-3 * sum(1 for _ in graph)

    spec = DeviceSpec(
        name="custom-walk",
        vendor="test",
        peak_macs_per_s=1e12,
        mem_bandwidth=1e11,
        act_bytes=2.0,
        weight_bytes=2.0,
        default_batch=8,
    )
    return _CustomWalk(spec)


class TestScalarFallback:
    def test_unsupported_device_rejected_by_kernel(self):
        device = _make_custom_walk_device()
        assert not supports_device(device)
        with pytest.raises(ValueError, match="scalar measurement path"):
            DeviceBatchKernel(device)

    def test_harness_falls_back_to_scalar_loop(self, archs):
        device = _make_custom_walk_device()
        harness = MeasurementHarness(device)
        batched = harness.measure_batch(archs[:6], "latency")
        scalar = [harness.measure_latency(a) for a in archs[:6]]
        assert batched.tolist() == scalar


class TestBatchFaults:
    def test_timeout_raises_at_scalar_index(self, archs):
        victim = archs[10]
        plan = FaultPlan([FaultSpec("timeout", keys=[victim.to_string()])])
        harness = MeasurementHarness(get_device("a100"), fault_plan=plan)
        with pytest.raises(MeasurementTimeout):
            harness.measure_batch(archs, "throughput")

    def test_value_faults_match_scalar(self, archs):
        def make_harness():
            return MeasurementHarness(
                get_device("tpuv3"),
                fault_plan=FaultPlan.from_string("nan:0.2,spike:0.3", seed=7),
            )

        batched = make_harness().measure_batch(archs, "latency")
        scalar_h = make_harness()
        scalar = np.array([scalar_h.measure_latency(a) for a in archs])
        assert np.array_equal(batched, scalar, equal_nan=True)

    def test_apply_faults_false_skips_plan(self, archs):
        plan = FaultPlan([FaultSpec("nan", keys=[archs[0].to_string()])])
        harness = MeasurementHarness(get_device("a100"), fault_plan=plan)
        clean = harness.measure_batch(archs, "throughput", apply_faults=False)
        ref = MeasurementHarness(get_device("a100")).measure_batch(
            archs, "throughput"
        )
        assert np.array_equal(clean, ref)


class TestGraphCacheLRU:
    def test_eviction_keeps_capacity(self, archs):
        cache = _GraphCache(capacity=4)
        for arch in archs[:10]:
            cache.get_or_build(arch, 224)
        info = cache.cache_info()
        assert info["size"] == 4
        assert info["capacity"] == 4
        assert info["misses"] == 10
        assert info["hits"] == 0

    def test_lru_order_recently_used_survives(self, archs):
        cache = _GraphCache(capacity=2)
        a, b, c = archs[:3]
        ga = cache.get_or_build(a, 224)
        cache.get_or_build(b, 224)
        # Touch `a` so `b` is the eviction victim when `c` arrives.
        assert cache.get_or_build(a, 224) is ga
        cache.get_or_build(c, 224)
        assert cache.cache_info()["hits"] == 1
        # `a` survived the eviction because it was recently used ...
        assert cache.get_or_build(a, 224) is ga
        # ... while `b` was evicted: fetching it again is a miss (rebuild).
        cache.get_or_build(b, 224)
        assert cache.cache_info()["misses"] == 4
        assert cache.cache_info()["hits"] == 2

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            _GraphCache(capacity=0)

    def test_module_cache_info_counts(self, archs):
        graph_cache_clear()
        assert graph_cache_info()["size"] == 0
        harness = MeasurementHarness(get_device("rtx3090"))
        harness.measure_throughput(archs[0])
        harness.measure_throughput(archs[0])
        info = graph_cache_info()
        assert info["misses"] >= 1
        assert info["hits"] >= 1
        graph_cache_clear()
        cleared = graph_cache_info()
        assert cleared == {
            "hits": 0,
            "misses": 0,
            "size": 0,
            "capacity": cleared["capacity"],
        }

    def test_concurrent_access_is_consistent(self, archs):
        cache = _GraphCache(capacity=8)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(60):
                arch = archs[int(rng.integers(0, 12))]
                graph = cache.get_or_build(arch, 224)
                expect = f"mnasnet[{arch.to_string()}]@224"
                if graph.name != expect:
                    errors.append((graph.name, expect))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        info = cache.cache_info()
        assert info["size"] <= 8
        assert info["hits"] + info["misses"] == 8 * 60
