"""Regression pin for the ``get_device`` memoisation race (ANB101).

``get_device`` is called from pool workers; before the lock was added,
two threads could interleave the ``name not in _INSTANCES`` check and
both construct a model — last write wins, and callers end up holding
*different* instances of the "same" device.  The analyzer flagged the
write; this test pins the fixed behaviour under real contention.
"""

from __future__ import annotations

import threading

import pytest

from repro.hwsim import registry

N_THREADS = 16


@pytest.fixture
def fresh_instances(monkeypatch):
    monkeypatch.setattr(registry, "_INSTANCES", {})


def test_concurrent_get_device_constructs_exactly_once(
    fresh_instances, monkeypatch
):
    construction_count = []
    real_factory = registry.DEVICE_FACTORIES["a100"]
    release = threading.Event()

    def slow_factory():
        # Widen the race window: every thread is already waiting at the
        # lock by the time the first construction finishes.
        release.wait(timeout=5)
        construction_count.append(1)
        return real_factory()

    monkeypatch.setitem(registry.DEVICE_FACTORIES, "a100", slow_factory)

    barrier = threading.Barrier(N_THREADS + 1)
    results = [None] * N_THREADS

    def task(slot):
        barrier.wait()
        results[slot] = registry.get_device("a100")

    threads = [
        threading.Thread(target=task, args=(i,)) for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()  # all threads racing toward get_device now
    release.set()
    for thread in threads:
        thread.join(timeout=10)

    assert len(construction_count) == 1, "factory ran more than once"
    assert all(model is results[0] for model in results), (
        "threads observed different instances of the same device"
    )


def test_get_device_results_unchanged_by_lock(fresh_instances):
    """The lock serialises construction only; the returned model and its
    measurements are byte-identical to the pre-lock serial behaviour."""
    model = registry.get_device("zcu102")
    again = registry.get_device("zcu102")
    assert again is model
    assert registry.supports_metric("zcu102", "latency")


def test_unknown_device_still_raises_outside_lock(fresh_instances):
    with pytest.raises(KeyError, match="unknown device"):
        registry.get_device("tpu9000")
