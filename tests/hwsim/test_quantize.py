"""Unit tests for INT8 post-training quantization simulation."""

from repro.hwsim.quantize import quantized_accuracy_delta
from repro.searchspace.mnasnet import ArchSpec


class TestQuantizeDelta:
    def test_always_negative(self, some_archs):
        for arch in some_archs[:20]:
            assert quantized_accuracy_delta(arch) < 0

    def test_bounded(self, some_archs):
        for arch in some_archs[:20]:
            assert quantized_accuracy_delta(arch) > -0.02

    def test_deterministic(self, some_archs):
        arch = some_archs[0]
        assert quantized_accuracy_delta(arch) == quantized_accuracy_delta(arch)

    def test_se_increases_drop(self):
        base = dict(expansion=(6,) * 7, kernel=(3,) * 7, layers=(2,) * 7)
        no_se = ArchSpec(se=(0,) * 7, **base)
        with_se = ArchSpec(se=(1,) * 7, **base)
        # SE gating is range-sensitive: more SE stages, more PTQ loss (the
        # hash jitter is smaller than the 7-stage SE drop).
        assert quantized_accuracy_delta(with_se) < quantized_accuracy_delta(no_se)

    def test_light_models_lose_more(self, tiny_arch):
        heavy = ArchSpec((6,) * 7, (3,) * 7, (3,) * 7, (0,) * 7)
        light_drop = quantized_accuracy_delta(tiny_arch)
        heavy_drop = quantized_accuracy_delta(heavy)
        assert light_drop < heavy_drop + 0.002  # light model drops at least as much
