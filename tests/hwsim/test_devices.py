"""Unit tests for the accelerator performance models."""

import numpy as np
import pytest

from repro.hwsim.device import LayerTiming
from repro.hwsim.fpga import FpgaDpuModel, make_vck190, make_zcu102
from repro.hwsim.gpu import make_a100, make_rtx3090
from repro.hwsim.registry import (
    DEVICE_METRICS,
    get_device,
    list_devices,
    supports_metric,
)
from repro.hwsim.tpu import _pad_ratio, make_tpuv2, make_tpuv3
from repro.searchspace.mnasnet import ArchSpec
from repro.searchspace.model_builder import build_model


@pytest.fixture(scope="module")
def b0_graph():
    from repro.searchspace.baselines import EFFICIENTNET_B0

    return build_model(EFFICIENTNET_B0.arch)


ALL_DEVICES = ("a100", "rtx3090", "tpuv2", "tpuv3", "zcu102", "vck190")


class TestRegistry:
    def test_all_six_devices_present(self):
        assert set(list_devices()) == set(ALL_DEVICES)

    def test_instances_cached(self):
        assert get_device("a100") is get_device("a100")

    def test_unknown_device_rejected(self):
        with pytest.raises(KeyError):
            get_device("h100")

    def test_latency_is_fpga_only(self):
        for device, metrics in DEVICE_METRICS.items():
            if device in ("zcu102", "vck190"):
                assert "latency" in metrics
            else:
                assert metrics == ("throughput",)
        assert supports_metric("zcu102", "latency")
        assert not supports_metric("a100", "latency")


class TestTimingBasics:
    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_positive_latency_and_throughput(self, name, b0_graph):
        device = get_device(name)
        assert device.latency_ms(b0_graph) > 0
        assert device.throughput_ips(b0_graph) > 0

    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_timings_cover_every_layer(self, name, b0_graph):
        device = get_device(name)
        timings = device.graph_timings(b0_graph, batch=1)
        assert len(timings) == len(b0_graph)
        assert all(isinstance(t, LayerTiming) and t.total_s >= 0 for t in timings)

    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_total_is_max_plus_overhead(self, name, b0_graph):
        device = get_device(name)
        t = device.graph_timings(b0_graph, batch=1)[0]
        assert t.total_s == pytest.approx(max(t.compute_s, t.memory_s) + t.overhead_s)

    def test_batch_must_be_positive(self, b0_graph):
        with pytest.raises(ValueError):
            get_device("a100").graph_timings(b0_graph, batch=0)

    @pytest.mark.parametrize("name", ALL_DEVICES)
    def test_batch_latency_monotone_in_batch(self, name, b0_graph):
        device = get_device(name)
        assert device.batch_latency_s(b0_graph, 8) > device.batch_latency_s(b0_graph, 1)

    @pytest.mark.parametrize("name", ("a100", "tpuv3"))
    def test_batching_improves_throughput(self, name, b0_graph):
        device = get_device(name)
        thr_1 = 1 / device.batch_latency_s(b0_graph, 1)
        thr_64 = 64 / device.batch_latency_s(b0_graph, 64)
        assert thr_64 > 2 * thr_1


class TestDeviceMechanisms:
    def test_bigger_model_is_slower_everywhere(self, tiny_arch, big_arch):
        small = build_model(tiny_arch)
        big = build_model(big_arch)
        for name in ALL_DEVICES:
            device = get_device(name)
            assert device.latency_ms(big) > device.latency_ms(small)

    def test_se_fallback_hurts_fpga_disproportionately(self):
        base = dict(expansion=(4,) * 7, kernel=(3,) * 7, layers=(2,) * 7)
        no_se = build_model(ArchSpec(se=(0,) * 7, **base))
        with_se = build_model(ArchSpec(se=(1,) * 7, **base))
        fpga_ratio = get_device("zcu102").latency_ms(with_se) / get_device(
            "zcu102"
        ).latency_ms(no_se)
        gpu_ratio = get_device("a100").latency_ms(with_se) / get_device(
            "a100"
        ).latency_ms(no_se)
        assert fpga_ratio > gpu_ratio * 1.3

    def test_depthwise_runs_below_dense_efficiency_on_gpu(self, b0_graph):
        device = get_device("a100")
        eff_dense = device.params.efficiency["conv_standard"]
        eff_dw = device.params.efficiency["conv_depthwise"]
        assert eff_dw < eff_dense / 5

    def test_tpu_pad_ratio(self):
        assert _pad_ratio(128) == 1.0
        assert _pad_ratio(64) == 0.5
        assert _pad_ratio(129) == pytest.approx(129 / 256)
        with pytest.raises(ValueError):
            _pad_ratio(0)

    def test_tpuv3_faster_than_tpuv2(self, b0_graph):
        assert get_device("tpuv3").throughput_ips(b0_graph) > get_device(
            "tpuv2"
        ).throughput_ips(b0_graph)

    def test_a100_faster_than_rtx3090(self, b0_graph):
        assert get_device("a100").throughput_ips(b0_graph) > get_device(
            "rtx3090"
        ).throughput_ips(b0_graph)

    def test_vck190_faster_than_zcu102(self, b0_graph):
        assert get_device("vck190").throughput_ips(b0_graph) > get_device(
            "zcu102"
        ).throughput_ips(b0_graph)

    def test_fpga_multicore_throughput_exceeds_single_stream(self, b0_graph):
        device = get_device("zcu102")
        assert isinstance(device, FpgaDpuModel)
        single = device.spec.default_batch / device.batch_latency_s(b0_graph)
        assert device.throughput_ips(b0_graph) > 2 * single

    def test_factories_produce_fresh_instances(self):
        assert make_a100() is not make_a100()
        for factory in (make_rtx3090, make_tpuv2, make_tpuv3, make_zcu102, make_vck190):
            device = factory()
            assert device.spec.peak_macs_per_s > 0

    def test_b0_throughput_magnitudes_plausible(self, b0_graph):
        # Sanity anchors for absolute scales (img/s at default batch).
        assert 2000 < get_device("a100").throughput_ips(b0_graph) < 20000
        assert 200 < get_device("zcu102").throughput_ips(b0_graph) < 1500
        assert 500 < get_device("vck190").throughput_ips(b0_graph) < 5000
