"""Unit tests for the device profiler."""

import pytest

from repro.hwsim.profile import profile_arch
from repro.hwsim.registry import get_device
from repro.searchspace.baselines import EFFICIENTNET_B0


@pytest.fixture(scope="module")
def b0_profile():
    return profile_arch(EFFICIENTNET_B0.arch, get_device("zcu102"), batch=8)


class TestProfile:
    def test_shares_sum_to_one(self, b0_profile):
        assert sum(op.share for op in b0_profile.by_op) == pytest.approx(1.0)

    def test_total_matches_layer_sum(self, b0_profile):
        assert b0_profile.total_s == pytest.approx(
            sum(t.total_s for t in b0_profile.timings)
        )

    def test_sorted_by_time(self, b0_profile):
        totals = [op.total_s for op in b0_profile.by_op]
        assert totals == sorted(totals, reverse=True)

    def test_se_dominates_on_dpu(self, b0_profile):
        """The CPU-fallback mechanism must show up as the DPU's bottleneck."""
        assert b0_profile.by_op[0].op_type == "squeeze_excite"
        assert b0_profile.by_op[0].bound == "overhead"

    def test_top_layers(self, b0_profile):
        top = b0_profile.top_layers(3)
        assert len(top) == 3
        assert top[0].total_s >= top[1].total_s >= top[2].total_s

    def test_report_contains_key_sections(self, b0_profile):
        text = b0_profile.report()
        assert "profile on zcu102" in text
        assert "slowest" in text
        assert "squeeze_excite" in text

    def test_gpu_profile_differs(self):
        gpu = profile_arch(EFFICIENTNET_B0.arch, get_device("a100"))
        # On GPU the depthwise/pointwise convs dominate, not SE fallback.
        assert gpu.by_op[0].op_type != "squeeze_excite"

    def test_default_batch_used(self):
        profile = profile_arch(EFFICIENTNET_B0.arch, get_device("a100"))
        assert profile.batch == get_device("a100").spec.default_batch
