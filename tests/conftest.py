"""Shared fixtures: search space, small collected datasets, fitted models.

Expensive artefacts (dataset collection, surrogate fits) are session-scoped
so the suite stays fast on a single core.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dataset import collect_accuracy_dataset, sample_dataset_archs
from repro.searchspace.features import FeatureEncoder
from repro.searchspace.mnasnet import ArchSpec, MnasNetSearchSpace
from repro.trainsim.schemes import P_STAR
from repro.trainsim.trainer import SimulatedTrainer


@pytest.fixture(scope="session")
def space() -> MnasNetSearchSpace:
    return MnasNetSearchSpace(seed=0)


@pytest.fixture(scope="session")
def some_archs(space) -> list[ArchSpec]:
    """60 distinct random architectures."""
    return space.sample_batch(60, rng=np.random.default_rng(1234), unique=True)


@pytest.fixture(scope="session")
def tiny_arch() -> ArchSpec:
    """The smallest architecture in the space."""
    return ArchSpec(
        expansion=(1,) * 7, kernel=(3,) * 7, layers=(1,) * 7, se=(0,) * 7
    )


@pytest.fixture(scope="session")
def big_arch() -> ArchSpec:
    """The largest architecture in the space."""
    return ArchSpec(
        expansion=(6,) * 7, kernel=(5,) * 7, layers=(3,) * 7, se=(1,) * 7
    )


@pytest.fixture(scope="session")
def trainer() -> SimulatedTrainer:
    return SimulatedTrainer()


@pytest.fixture(scope="session")
def small_acc_dataset():
    """ANB-Acc over 300 architectures (shared across test modules)."""
    archs = sample_dataset_archs(300, seed=5)
    return collect_accuracy_dataset(archs, P_STAR)


@pytest.fixture(scope="session")
def encoder() -> FeatureEncoder:
    return FeatureEncoder("onehot")


@pytest.fixture(scope="session")
def xy_small(small_acc_dataset, encoder):
    """Feature matrix / target vector of the small accuracy dataset."""
    X = encoder.encode(small_acc_dataset.archs)
    y = small_acc_dataset.values
    return X, y
