"""Ablation: every surrogate family on a device-performance target.

Table 2 fixes XGB as the performance surrogate; this ablation justifies that
choice by fitting all six implemented families (the paper's five plus a GP
extension) on the VCK190 throughput dataset.  Expected shape: boosting wins,
kernel methods follow, RF trails — mirroring Table 1's ordering on a very
different (multiplicative, combinatorial) target.
"""

from conftest import emit

from repro.core.surrogate_fit import SurrogateFitter
from repro.experiments.common import format_table

FAMILIES = ("xgb", "lgb", "rf", "esvr", "nusvr", "gp")
TARGET = ("vck190", "throughput")


def run_families(ctx) -> dict:
    dataset = ctx.device_dataset(*TARGET)
    fitter = SurrogateFitter()
    rows = {}
    for family in FAMILIES:
        report = fitter.fit(dataset, family)
        rows[family] = {"r2": report.r2, "kendall": report.kendall, "mae": report.mae}
    return {"dataset": dataset.name, "rows": rows}


def test_surrogate_families_on_device(benchmark, ctx):
    result = benchmark.pedantic(lambda: run_families(ctx), rounds=1, iterations=1)
    rows = result["rows"]
    table = format_table(
        ["model", "R2", "KT tau", "MAE"],
        [
            [f, f"{r['r2']:.3f}", f"{r['kendall']:.3f}", f"{r['mae']:.3g}"]
            for f, r in rows.items()
        ],
    )
    emit(
        "ablation_surrogate_families",
        f"Ablation — all surrogate families on {result['dataset']}\n{table}",
    )
    assert rows["xgb"]["kendall"] > rows["rf"]["kendall"]
    for family in FAMILIES:
        assert rows[family]["r2"] > 0.5, family
