"""Ablation: successive halving vs fixed-fidelity search at equal GPU-hours.

The paper frames training proxies as the static cousin of multi-fidelity HPO
(successive halving / hyperband).  This ablation makes the comparison
concrete: given the same simulated GPU-hour budget, is it better to (a)
evaluate many architectures at a single cheap fidelity (the paper's p*
approach) or (b) run a successive-halving tournament across fidelities?
Both selections are scored by the *true* (reference-scheme, noise-free)
accuracy of the chosen architecture.
"""

import numpy as np
from conftest import emit

from repro.experiments.common import format_table
from repro.optimizers import SuccessiveHalving
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim.schemes import REFERENCE_SCHEME, TrainingScheme
from repro.trainsim.trainer import SimulatedTrainer


def run_comparison(num_seeds: int = 3) -> dict:
    trainer = SimulatedTrainer()

    def fidelity_scheme(epochs: int) -> TrainingScheme:
        return TrainingScheme(512, epochs, 0, min(20, epochs), 128, 192)

    def true_quality(arch) -> float:
        return trainer.expected_top1(arch, REFERENCE_SCHEME)

    rows = []
    for seed in range(num_seeds):
        space = MnasNetSearchSpace(seed=100 + seed)

        # (a) successive halving: 54 archs at 10 epochs, 18 at 30, 6 at 90.
        sh = SuccessiveHalving(seed=seed, eta=3, fidelities=(10, 30, 90))
        spent_hours = 0.0

        def sh_objective(arch, epochs):
            nonlocal spent_hours
            scheme = fidelity_scheme(epochs)
            spent_hours += trainer.cost_model.train_time_hours(arch, scheme)
            return trainer.train(arch, scheme, seed=seed).top1

        sh.space = space
        sh_result = sh.run_multifidelity(sh_objective, initial_population=54)
        sh_pick = sh_result.best_arch
        sh_hours = spent_hours

        # (b) fixed fidelity: spend the same GPU-hours at 30 epochs each.
        fixed_scheme = fidelity_scheme(30)
        candidates = space.sample_batch(500, unique=True)
        budget_left = sh_hours
        best_fixed, best_fixed_acc = None, -1.0
        for arch in candidates:
            cost = trainer.cost_model.train_time_hours(arch, fixed_scheme)
            if cost > budget_left:
                break
            budget_left -= cost
            acc = trainer.train(arch, fixed_scheme, seed=seed).top1
            if acc > best_fixed_acc:
                best_fixed, best_fixed_acc = arch, acc
        assert best_fixed is not None

        rows.append(
            {
                "seed": seed,
                "hours": sh_hours,
                "sh_true": true_quality(sh_pick),
                "fixed_true": true_quality(best_fixed),
            }
        )
    return {"rows": rows}


def test_multifidelity_vs_fixed(benchmark):
    result = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    rows = result["rows"]
    table = format_table(
        ["seed", "GPU-h", "SH pick (true acc)", "fixed-fidelity pick"],
        [
            [
                r["seed"],
                f"{r['hours']:.1f}",
                f"{r['sh_true']:.4f}",
                f"{r['fixed_true']:.4f}",
            ]
            for r in rows
        ],
    )
    sh_mean = np.mean([r["sh_true"] for r in rows])
    fixed_mean = np.mean([r["fixed_true"] for r in rows])
    emit(
        "ablation_multifidelity",
        "Ablation — successive halving vs fixed fidelity at equal GPU-hours\n"
        f"{table}\nmean true accuracy: SH {sh_mean:.4f} vs fixed {fixed_mean:.4f}",
    )
    # Both must find strong models; neither should collapse.
    assert sh_mean > 0.75
    assert fixed_mean > 0.75
