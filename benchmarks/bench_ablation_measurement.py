"""Ablation: measurement protocol (warmup discard + averaging vs single shot).

DESIGN.md design choice: the paper discards warmup runs and averages several
measurements.  This bench compares the paper protocol against keeping the
first (warmup-contaminated) sample, reporting the rank correlation of each
against the noise-free device model.  Expected shape: the paper protocol
tracks the clean ranking nearly perfectly; warmup-contaminated single shots
are visibly worse.
"""

from conftest import emit

from repro.core.metrics import kendall_tau
from repro.experiments.common import format_table
from repro.hwsim.measure import MeasurementHarness, MeasurementProtocol
from repro.hwsim.registry import get_device
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.searchspace.model_builder import build_model

DEVICE = "tpuv3"  # worst warmup offender: XLA compilation


def run_ablation(num_archs: int = 120) -> dict:
    device = get_device(DEVICE)
    space = MnasNetSearchSpace(seed=77)
    archs = space.sample_batch(num_archs, unique=True)
    clean = [device.throughput_ips(build_model(a)) for a in archs]

    paper = MeasurementHarness(device)  # warmup discarded, 4-run average
    contaminated = MeasurementHarness(
        device,
        MeasurementProtocol(warmup_runs=0, timed_runs=1, noise_std=0.015,
                            warmup_slowdown=1.8),
    )
    # Simulate "forgot to warm up": take the first run, which a real warmup
    # phase would have slowed by the compile/caching factor.
    single_raw = []
    for arch in archs:
        value = contaminated.measure_throughput(arch)
        single_raw.append(value / contaminated.protocol.warmup_slowdown)

    paper_vals = [paper.measure_throughput(a) for a in archs]
    return {
        "device": DEVICE,
        "num_archs": num_archs,
        "tau_paper": kendall_tau(paper_vals, clean),
        "tau_single": kendall_tau(single_raw, clean),
        "mean_rel_err_paper": float(
            sum(abs(p - c) / c for p, c in zip(paper_vals, clean)) / num_archs
        ),
        "mean_rel_err_single": float(
            sum(abs(s - c) / c for s, c in zip(single_raw, clean)) / num_archs
        ),
    }


def test_measurement_protocol(benchmark):
    result = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    table = format_table(
        ["protocol", "KT tau vs clean", "mean rel. error"],
        [
            ["paper (warmup+avg)", f"{result['tau_paper']:.3f}",
             f"{result['mean_rel_err_paper']:.1%}"],
            ["single shot w/ warmup", f"{result['tau_single']:.3f}",
             f"{result['mean_rel_err_single']:.1%}"],
        ],
    )
    emit(
        "ablation_measurement",
        f"Ablation — measurement protocol on {result['device']} "
        f"({result['num_archs']} archs)\n{table}",
    )
    assert result["tau_paper"] > 0.97
    assert result["mean_rel_err_paper"] < result["mean_rel_err_single"]
