"""Bench: Table 1 — surrogate test performance on ANB-Acc.

Paper shape: XGB ~= LGB (R2 .984 / tau .922) > epsilon/nu-SVR (~.94/.88) >
RF (.869/.782); MAE in the few-1e-3 range.
"""

from conftest import emit

from repro.experiments import tab1_acc_surrogates


def test_table1(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: tab1_acc_surrogates.run(ctx=ctx), rounds=1, iterations=1
    )
    emit("table1_acc_surrogates", tab1_acc_surrogates.report(result))
    rows = result["rows"]
    # Shape assertions from the paper: boosting beats SVR beats RF on tau.
    assert rows["xgb"]["kendall"] > rows["rf"]["kendall"]
    assert rows["lgb"]["kendall"] > rows["rf"]["kendall"]
    assert rows["xgb"]["r2"] > 0.9
    assert rows["xgb"]["mae"] < 0.01
