"""Bench: Figure 5 — uni-objective search trajectories, true vs simulated.

Paper shape: the surrogate-simulated trajectories mirror the true (proxy-
trained) ones; RS stagnates early on the MnasNet space while RE and
REINFORCE keep improving.
"""

import numpy as np
from conftest import BENCH_BUDGET, emit

from repro.experiments import fig5_trajectories


def test_fig5(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: fig5_trajectories.run(
            ctx=ctx, budget=BENCH_BUDGET, simulated_seeds=(0, 1, 2, 3, 4)
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig5_trajectories", fig5_trajectories.report(result))
    true_final = {k: float(np.asarray(v)[-1]) for k, v in result["true"].items()}
    sim_final = {k: float(np.asarray(v)[-1]) for k, v in result["simulated"].items()}
    # Guided optimizers beat random search in both worlds.
    assert true_final["RE"] >= true_final["RS"]
    assert sim_final["RE"] >= sim_final["RS"]
    assert sim_final["REINFORCE"] >= sim_final["RS"] - 0.002
