"""Ablation: bi-objective optimizer comparison (REINFORCE vs NSGA-II vs RS).

The paper uses scalarised REINFORCE for its Fig. 4 searches.  This ablation
compares it against NSGA-II (a dedicated multi-objective method) and random
sampling at equal budget, scoring each by the hypervolume of its accuracy-
throughput front on the zcu102 surrogates.
"""

import numpy as np
from conftest import BENCH_BUDGET, emit

from repro.core.pareto import hypervolume_2d, pareto_front
from repro.experiments.common import format_table
from repro.optimizers import Nsga2, Reinforce
from repro.searchspace.mnasnet import MnasNetSearchSpace

DEVICE, METRIC, TARGET = "zcu102", "throughput", 700.0


def run_comparison(ctx, budget: int) -> dict:
    bench = ctx.benchmark()
    acc_fn = bench.query_accuracy
    perf_fn = lambda a: max(bench.query_performance(a, DEVICE, METRIC), 1e-9)

    results = {}
    reinforce = Reinforce(seed=0).run_biobjective(
        acc_fn, perf_fn, target=TARGET, budget=budget, metric=METRIC, device=DEVICE
    )
    results["REINFORCE"] = np.stack(
        [reinforce.accuracies, reinforce.performances], axis=1
    )
    nsga = Nsga2(seed=0, population_size=40).run_biobjective(
        acc_fn, perf_fn, budget=budget, metric=METRIC, device=DEVICE
    )
    results["NSGA-II"] = np.stack([nsga.accuracies, nsga.performances], axis=1)

    space = MnasNetSearchSpace(seed=5)
    random_archs = space.sample_batch(budget, unique=True)
    results["Random"] = np.asarray(
        [[acc_fn(a), perf_fn(a)] for a in random_archs]
    )

    reference = (0.60, 1.0)  # dominated by every sensible model
    out = {}
    for name, pts in results.items():
        front = pareto_front(pts, [True, True])
        out[name] = {
            "hypervolume": hypervolume_2d(pts, reference, [True, True]),
            "front_size": len(front),
            "best_acc": float(pts[:, 0].max()),
            "best_thr": float(pts[:, 1].max()),
        }
    return out


def test_biobjective_optimizer_comparison(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: run_comparison(ctx, BENCH_BUDGET), rounds=1, iterations=1
    )
    rows = [
        [
            name,
            f"{row['hypervolume']:.1f}",
            str(row["front_size"]),
            f"{row['best_acc']:.3f}",
            f"{row['best_thr']:.0f}",
        ]
        for name, row in result.items()
    ]
    emit(
        "ablation_optimizers",
        "Ablation — bi-objective optimizers on zcu102-throughput "
        f"(budget {BENCH_BUDGET})\n"
        + format_table(
            ["optimizer", "hypervolume", "front", "best acc", "best thr"], rows
        ),
    )
    # Both guided methods must beat random sampling on hypervolume.
    assert result["REINFORCE"]["hypervolume"] > result["Random"]["hypervolume"] * 0.98
    assert result["NSGA-II"]["hypervolume"] > result["Random"]["hypervolume"] * 0.98
