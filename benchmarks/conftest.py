"""Shared state for the benchmark harness.

Scale knobs (environment variables):

``ANB_BENCH_ARCHS``   dataset size for surrogate benches (default 2600;
                      the paper uses 5200 — set that for paper scale).
``ANB_BENCH_BUDGET``  search-evaluation budget for Fig. 4/5 (default 800;
                      paper-scale runs use 2000+).

Each bench runs its experiment once (``benchmark.pedantic`` with a single
round — these are minutes-long experiment regenerations, not microbenchmarks),
prints the paper-style table/series, and writes it to ``results/``.
"""

from __future__ import annotations

import datetime
import json
import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentContext

BENCH_ARCHS = int(os.environ.get("ANB_BENCH_ARCHS", "2600"))
BENCH_BUDGET = int(os.environ.get("ANB_BENCH_BUDGET", "800"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    """One shared dataset collection / benchmark build for the whole run."""
    return ExperimentContext(num_archs=BENCH_ARCHS)


@pytest.fixture(scope="session")
def shared_results() -> dict:
    """Cross-bench result hand-off (Fig. 6 consumes Fig. 4's picks)."""
    return {}


def emit(name: str, text: str) -> None:
    """Print a bench report and persist it under results/."""
    print(f"\n{text}\n")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def record_trajectory(name: str, point: dict) -> Path:
    """Append one dated point to the ``results/BENCH_{name}.json`` trajectory.

    Perf benches call this every run, building a machine-readable history of
    how the hot paths evolve across PRs (complementing the human-readable
    ``results/*.txt`` reports).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {"bench": name, "points": []}
    payload["points"].append(
        {"date": datetime.date.today().isoformat(), **point}
    )
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
