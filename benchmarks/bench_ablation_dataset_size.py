"""Ablation: surrogate quality vs training-set size (sustainability claim).

The paper's sustainability argument rests on needing only ~5.2k trained
models.  This bench fits the XGB accuracy surrogate on growing subsets and
reports test tau/R2 — expected shape: quality rises steeply then saturates,
so a few thousand models indeed suffice.
"""

from conftest import emit

from repro.core.dataset import BenchmarkDataset
from repro.core.surrogate_fit import SurrogateFitter
from repro.experiments.common import format_table


def run_sweep(ctx) -> dict:
    full = ctx.accuracy_dataset()
    sizes = [n for n in (200, 400, 800, 1600, len(full)) if n <= len(full)]
    rows = []
    for n in sizes:
        subset = BenchmarkDataset(
            name=f"{full.name}[:{n}]",
            metric=full.metric,
            archs=full.archs[:n],
            values=full.values[:n],
        )
        report = SurrogateFitter().fit(subset, "xgb")
        rows.append({"n": n, "r2": report.r2, "kendall": report.kendall, "mae": report.mae})
    return {"rows": rows}


def test_dataset_size_scaling(benchmark, ctx):
    result = benchmark.pedantic(lambda: run_sweep(ctx), rounds=1, iterations=1)
    rows = result["rows"]
    table = format_table(
        ["n_archs", "R2", "KT tau", "MAE"],
        [
            [r["n"], f"{r['r2']:.3f}", f"{r['kendall']:.3f}", f"{r['mae']:.2e}"]
            for r in rows
        ],
    )
    emit("ablation_dataset_size", f"Ablation — surrogate quality vs dataset size\n{table}")
    assert rows[-1]["kendall"] > rows[0]["kendall"]
    # Diminishing returns: the last doubling buys less tau than the first.
    first_gain = rows[1]["kendall"] - rows[0]["kendall"]
    last_gain = rows[-1]["kendall"] - rows[-2]["kendall"]
    assert last_gain < first_gain + 0.05
