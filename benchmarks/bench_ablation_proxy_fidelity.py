"""Ablation: training-proxy fidelity vs rank correlation (cost-tau curve).

Sweeps the epoch budget of the proxy scheme and reports the (speedup, tau)
tradeoff on a held-out validation batch — the curve behind DESIGN.md's
'proxy fidelity' design choice.  Expected shape: tau rises monotonically
with training cost and saturates near the reference.
"""

import numpy as np
from conftest import emit

from repro.core.metrics import kendall_tau
from repro.core.proxy_search import TrainingProxySearch
from repro.experiments.common import format_table
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim.schemes import TrainingScheme
from repro.trainsim.trainer import SimulatedTrainer

EPOCH_SWEEP = (15, 30, 50, 80, 120)


def run_sweep(num_archs: int = 80) -> dict:
    trainer = SimulatedTrainer()
    space = MnasNetSearchSpace(seed=31)
    archs = space.sample_batch(num_archs, unique=True)
    search = TrainingProxySearch(trainer=trainer, grid_archs=archs[:2])
    reference = search.reference
    ref_acc = [
        np.mean([trainer.train(a, reference, s).top1 for s in (0, 1, 2)])
        for a in archs
    ]
    ref_hours = np.mean(
        [trainer.cost_model.train_time_hours(a, reference) for a in archs]
    )
    rows = []
    for epochs in EPOCH_SWEEP:
        scheme = TrainingScheme(512, epochs, 0, min(60, epochs), 128, 224)
        acc = [
            np.mean([trainer.train(a, scheme, s).top1 for s in (0, 1, 2)])
            for a in archs
        ]
        hours = np.mean(
            [trainer.cost_model.train_time_hours(a, scheme) for a in archs]
        )
        rows.append(
            {
                "epochs": epochs,
                "speedup": ref_hours / hours,
                "tau": kendall_tau(acc, ref_acc),
            }
        )
    return {"num_archs": num_archs, "rows": rows}


def test_proxy_fidelity_tradeoff(benchmark):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = result["rows"]
    table = format_table(
        ["epochs", "speedup", "tau"],
        [[r["epochs"], f"{r['speedup']:.1f}x", f"{r['tau']:.3f}"] for r in rows],
    )
    emit(
        "ablation_proxy_fidelity",
        f"Ablation — proxy fidelity vs rank correlation "
        f"({result['num_archs']} archs)\n{table}",
    )
    taus = [r["tau"] for r in rows]
    # tau improves with fidelity (allow small non-monotonic jitter).
    assert taus[-1] > taus[0] + 0.1
    assert taus[-1] > 0.9
