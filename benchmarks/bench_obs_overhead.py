"""Bench: the telemetry overhead contract — disabled obs costs <2%.

``repro.obs`` is gated once per run (``telemetry_active()``): with telemetry
off, the instrumented hot paths execute only a handful of cheap gate checks
and null spans, never per-item work.  This bench quantifies that contract on
the two hot paths the repo already tracks (batched collection, batched
queries):

* micro-times the disabled primitives (``telemetry_active()``, a null
  ``span`` enter/exit),
* multiplies by a deliberately generous bound on how many such operations
  each path executes, and asserts the implied overhead stays below 2% of
  the measured path time,
* cross-checks the out-of-band invariant: enabling telemetry leaves the
  computed values bit-identical.

Records everything to ``results/BENCH_obs.json``.
"""

import numpy as np

import repro.obs as obs
from repro.core.dataset import collect_accuracy_dataset, sample_dataset_archs
from repro.trainsim.schemes import P_STAR

from conftest import emit, record_trajectory

COLLECT_ARCHS = 400
QUERY_POPULATION = 512
MICRO_REPS = 20_000
# Generous ceilings on gated obs operations per hot-path invocation.  The
# gate-once design means the true counts are O(1) per run (plus one null
# span per batch-kernel chunk), far below these bounds.
COLLECT_OPS_BOUND = 64
QUERY_OPS_BOUND = 16
OVERHEAD_LIMIT = 0.02


def _micro_seconds_per_op(fn, reps=MICRO_REPS):
    with obs.timer() as t:
        for _ in range(reps):
            fn()
    return t.seconds / reps


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        with obs.timer() as t:
            out = fn()
        best = min(best, t.seconds)
    return out, best


def _null_span():
    with obs.span("bench.null"):
        pass


def test_disabled_overhead_under_two_percent(ctx):
    obs.reset()
    assert not obs.telemetry_active()

    archs = sample_dataset_archs(COLLECT_ARCHS, seed=31)
    bench = ctx.benchmark()
    space_archs = archs[:QUERY_POPULATION]

    # Warm shared caches so both telemetry states compete at steady state.
    collect_accuracy_dataset(archs[:4], P_STAR)
    bench.query_accuracy_batch(space_archs[:4])

    # Disabled-path timings.
    collect_off, collect_off_s = _best_of(
        lambda: collect_accuracy_dataset(archs, P_STAR)
    )
    query_off, query_off_s = _best_of(
        lambda: bench.query_accuracy_batch(space_archs)
    )

    # Disabled-primitive costs.
    gate_s = _micro_seconds_per_op(obs.telemetry_active)
    span_s = _micro_seconds_per_op(_null_span)
    op_s = max(gate_s, span_s)

    collect_bound = COLLECT_OPS_BOUND * op_s / collect_off_s
    query_bound = QUERY_OPS_BOUND * op_s / query_off_s

    # Out-of-band invariant: flip telemetry on (metrics + spans, logging
    # silenced) and re-run — values must be bit-identical, and the wall
    # time is recorded for the trajectory.
    obs.configure(level="off", trace=True)
    try:
        assert obs.telemetry_active()
        collect_on, collect_on_s = _best_of(
            lambda: collect_accuracy_dataset(archs, P_STAR)
        )
        query_on, query_on_s = _best_of(
            lambda: bench.query_accuracy_batch(space_archs)
        )
    finally:
        obs.reset()

    assert np.array_equal(collect_off.values, collect_on.values)
    assert np.array_equal(query_off, query_on)

    lines = [
        "Telemetry overhead: gated primitives vs hot-path time",
        f"  telemetry_active()     : {gate_s * 1e9:8.1f} ns/op",
        f"  null span enter/exit   : {span_s * 1e9:8.1f} ns/op",
        f"  collect ({COLLECT_ARCHS} archs)   : {collect_off_s * 1e3:8.1f} ms off, "
        f"{collect_on_s * 1e3:8.1f} ms on",
        f"  query batch ({QUERY_POPULATION})     : {query_off_s * 1e3:8.1f} ms off, "
        f"{query_on_s * 1e3:8.1f} ms on",
        f"  collect overhead bound : {collect_bound * 100:8.4f} % "
        f"(limit {OVERHEAD_LIMIT * 100:.0f} %)",
        f"  query overhead bound   : {query_bound * 100:8.4f} % "
        f"(limit {OVERHEAD_LIMIT * 100:.0f} %)",
        "  values: bit-identical with telemetry on and off",
    ]
    emit("bench_obs_overhead", "\n".join(lines))
    record_trajectory(
        "obs",
        {
            "collect_archs": COLLECT_ARCHS,
            "query_population": QUERY_POPULATION,
            "telemetry_active_ns": gate_s * 1e9,
            "null_span_ns": span_s * 1e9,
            "collect_disabled_s": collect_off_s,
            "collect_enabled_s": collect_on_s,
            "query_disabled_s": query_off_s,
            "query_enabled_s": query_on_s,
            "collect_overhead_bound": collect_bound,
            "query_overhead_bound": query_bound,
        },
    )
    assert collect_bound < OVERHEAD_LIMIT, (
        f"collect overhead bound {collect_bound:.4%} >= 2%"
    )
    assert query_bound < OVERHEAD_LIMIT, (
        f"query overhead bound {query_bound:.4%} >= 2%"
    )


LIVE_REPS = 50_000


def test_live_plane_micro_costs():
    """Per-observation cost of the always-on serve plane (v2).

    The windowed quantile/SLO/ring instruments run on every query request
    regardless of the telemetry switch, so their per-op cost is a direct
    request-latency tax.  This bench pins each primitive's cost and keeps
    the whole per-request set comfortably below a 50 µs budget — three
    orders of magnitude under a ~10 ms surrogate query.
    """
    obs.reset()

    window = obs.WindowedQuantiles()
    sketch = obs.QuantileSketch()
    slo = obs.SLOTracker()
    ring = obs.TraceRing(256)
    ids = obs.IdGenerator(seed=0)
    ctx = obs.TraceContext(ids.trace_id(), ids.span_id())
    rng = np.random.default_rng(17)
    values = rng.exponential(0.01, LIVE_REPS).tolist()

    def timed(fn, args):
        with obs.timer() as t:
            for arg in args:
                fn(arg)
        return t.seconds / len(args)

    window_s = timed(window.observe, values)
    sketch_s = timed(sketch.observe, values)
    slo_s = timed(lambda v: slo.record(200, v), values)
    ring_s = timed(
        lambda v: ring.record("bench", ctx, start=0.0, duration=v),
        values[:10_000],
    )

    # A scrape renders the whole registry; time it at a realistic size.
    reg = obs.metrics()
    reg.clear()
    for i in range(8):
        reg.inc(f"serve.requests.ep{i}", 100)
        reg.observe_window(f"serve.latency.window.ep{i}", 0.01)
    from repro.obs.expo import render_exposition

    with obs.timer() as t:
        for _ in range(200):
            render_exposition(reg.snapshot())
    render_s = t.seconds / 200
    reg.clear()

    per_request_s = window_s + slo_s + ring_s
    lines = [
        "Live telemetry plane: per-operation costs (always-on on serve)",
        f"  windowed observe       : {window_s * 1e9:8.1f} ns/op",
        f"  sketch observe         : {sketch_s * 1e9:8.1f} ns/op",
        f"  SLO record             : {slo_s * 1e9:8.1f} ns/op",
        f"  trace ring record      : {ring_s * 1e9:8.1f} ns/op",
        f"  exposition render      : {render_s * 1e6:8.1f} us/scrape",
        f"  per-request plane cost : {per_request_s * 1e6:8.2f} us "
        "(window + SLO + ring)",
    ]
    emit("bench_obs_live_plane", "\n".join(lines))
    record_trajectory(
        "obs",
        {
            "window_observe_ns": window_s * 1e9,
            "sketch_observe_ns": sketch_s * 1e9,
            "slo_record_ns": slo_s * 1e9,
            "ring_record_ns": ring_s * 1e9,
            "expo_render_us": render_s * 1e6,
            "live_plane_per_request_us": per_request_s * 1e6,
        },
    )
    assert per_request_s < 50e-6, (
        f"live plane costs {per_request_s * 1e6:.1f} us/request (budget 50 us)"
    )
