"""Bench: the telemetry overhead contract — disabled obs costs <2%.

``repro.obs`` is gated once per run (``telemetry_active()``): with telemetry
off, the instrumented hot paths execute only a handful of cheap gate checks
and null spans, never per-item work.  This bench quantifies that contract on
the two hot paths the repo already tracks (batched collection, batched
queries):

* micro-times the disabled primitives (``telemetry_active()``, a null
  ``span`` enter/exit),
* multiplies by a deliberately generous bound on how many such operations
  each path executes, and asserts the implied overhead stays below 2% of
  the measured path time,
* cross-checks the out-of-band invariant: enabling telemetry leaves the
  computed values bit-identical.

Records everything to ``results/BENCH_obs.json``.
"""

import numpy as np

import repro.obs as obs
from repro.core.dataset import collect_accuracy_dataset, sample_dataset_archs
from repro.trainsim.schemes import P_STAR

from conftest import emit, record_trajectory

COLLECT_ARCHS = 400
QUERY_POPULATION = 512
MICRO_REPS = 20_000
# Generous ceilings on gated obs operations per hot-path invocation.  The
# gate-once design means the true counts are O(1) per run (plus one null
# span per batch-kernel chunk), far below these bounds.
COLLECT_OPS_BOUND = 64
QUERY_OPS_BOUND = 16
OVERHEAD_LIMIT = 0.02


def _micro_seconds_per_op(fn, reps=MICRO_REPS):
    with obs.timer() as t:
        for _ in range(reps):
            fn()
    return t.seconds / reps


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        with obs.timer() as t:
            out = fn()
        best = min(best, t.seconds)
    return out, best


def _null_span():
    with obs.span("bench.null"):
        pass


def test_disabled_overhead_under_two_percent(ctx):
    obs.reset()
    assert not obs.telemetry_active()

    archs = sample_dataset_archs(COLLECT_ARCHS, seed=31)
    bench = ctx.benchmark()
    space_archs = archs[:QUERY_POPULATION]

    # Warm shared caches so both telemetry states compete at steady state.
    collect_accuracy_dataset(archs[:4], P_STAR)
    bench.query_accuracy_batch(space_archs[:4])

    # Disabled-path timings.
    collect_off, collect_off_s = _best_of(
        lambda: collect_accuracy_dataset(archs, P_STAR)
    )
    query_off, query_off_s = _best_of(
        lambda: bench.query_accuracy_batch(space_archs)
    )

    # Disabled-primitive costs.
    gate_s = _micro_seconds_per_op(obs.telemetry_active)
    span_s = _micro_seconds_per_op(_null_span)
    op_s = max(gate_s, span_s)

    collect_bound = COLLECT_OPS_BOUND * op_s / collect_off_s
    query_bound = QUERY_OPS_BOUND * op_s / query_off_s

    # Out-of-band invariant: flip telemetry on (metrics + spans, logging
    # silenced) and re-run — values must be bit-identical, and the wall
    # time is recorded for the trajectory.
    obs.configure(level="off", trace=True)
    try:
        assert obs.telemetry_active()
        collect_on, collect_on_s = _best_of(
            lambda: collect_accuracy_dataset(archs, P_STAR)
        )
        query_on, query_on_s = _best_of(
            lambda: bench.query_accuracy_batch(space_archs)
        )
    finally:
        obs.reset()

    assert np.array_equal(collect_off.values, collect_on.values)
    assert np.array_equal(query_off, query_on)

    lines = [
        "Telemetry overhead: gated primitives vs hot-path time",
        f"  telemetry_active()     : {gate_s * 1e9:8.1f} ns/op",
        f"  null span enter/exit   : {span_s * 1e9:8.1f} ns/op",
        f"  collect ({COLLECT_ARCHS} archs)   : {collect_off_s * 1e3:8.1f} ms off, "
        f"{collect_on_s * 1e3:8.1f} ms on",
        f"  query batch ({QUERY_POPULATION})     : {query_off_s * 1e3:8.1f} ms off, "
        f"{query_on_s * 1e3:8.1f} ms on",
        f"  collect overhead bound : {collect_bound * 100:8.4f} % "
        f"(limit {OVERHEAD_LIMIT * 100:.0f} %)",
        f"  query overhead bound   : {query_bound * 100:8.4f} % "
        f"(limit {OVERHEAD_LIMIT * 100:.0f} %)",
        "  values: bit-identical with telemetry on and off",
    ]
    emit("bench_obs_overhead", "\n".join(lines))
    record_trajectory(
        "obs",
        {
            "collect_archs": COLLECT_ARCHS,
            "query_population": QUERY_POPULATION,
            "telemetry_active_ns": gate_s * 1e9,
            "null_span_ns": span_s * 1e9,
            "collect_disabled_s": collect_off_s,
            "collect_enabled_s": collect_on_s,
            "query_disabled_s": query_off_s,
            "query_enabled_s": query_on_s,
            "collect_overhead_bound": collect_bound,
            "query_overhead_bound": query_bound,
        },
    )
    assert collect_bound < OVERHEAD_LIMIT, (
        f"collect overhead bound {collect_bound:.4%} >= 2%"
    )
    assert query_bound < OVERHEAD_LIMIT, (
        f"query overhead bound {query_bound:.4%} >= 2%"
    )
