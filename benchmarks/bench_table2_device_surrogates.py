"""Bench: Table 2 — XGB test performance on all ANB-{device}-{metric} sets.

Paper shape: every device surrogate is strong (R2 >= .975, tau >= .905);
FPGA latency targets are the easiest, TPU throughput the hardest.
"""

from conftest import emit

from repro.experiments import tab2_device_surrogates


def test_table2(benchmark, ctx):
    result = benchmark.pedantic(
        lambda: tab2_device_surrogates.run(ctx=ctx), rounds=1, iterations=1
    )
    emit("table2_device_surrogates", tab2_device_surrogates.report(result))
    rows = result["rows"]
    assert len(rows) == 8
    for key, row in rows.items():
        assert row["r2"] > 0.75, key
        assert row["kendall"] > 0.75, key
