"""Bench: the serving layer under closed-loop load.

``repro.serve`` answers benchmark queries over HTTP with micro-batch
coalescing: concurrent single-arch queries are grouped into one
``query_batch`` call instead of N independent surrogate invocations.  This
bench quantifies that design with a closed-loop load generator (each worker
holds one keep-alive connection and issues its next request only after the
previous response lands) at several concurrency levels, with coalescing on
and off.

For every (concurrency, coalesce) cell it records throughput plus p50/p95/
p99 latency, asserts the coalescer actually grouped work at high
concurrency, and appends a dated point to ``results/BENCH_serve.json``.
"""

import asyncio
import time

import numpy as np

from repro.core.benchmark import AccelNASBench
from repro.core.reliability import RetryPolicy
from repro.serve import BenchServer, ServerConfig
from repro.serve.http import ClientConnection
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim.schemes import P_STAR

from conftest import emit, record_trajectory

CONCURRENCY_LEVELS = (1, 8, 32)
REQUESTS_PER_WORKER = 40
DEVICE = "a100"
METRIC = "throughput"


def _build_bench():
    bench, _ = AccelNASBench.build(
        P_STAR,
        num_archs=40,
        devices={DEVICE: (METRIC,)},
        sample_seed=3,
    )
    space = MnasNetSearchSpace(seed=99)
    archs = space.sample_batch(64, unique=True)
    return bench, [arch.to_string() for arch in archs]


async def _run_level(bench, archs, workers, coalesce):
    """Drive one closed-loop load cell; returns (latencies, wall, stats)."""
    config = ServerConfig(
        port=0,
        coalesce=coalesce,
        max_inflight=64,
        max_queue=512,
        max_delay=0.002,
        breaker_recovery=RetryPolicy(base_delay=0.1, jitter=0.0),
    )
    server = BenchServer(bench, config)
    await server.start()
    latencies = []

    async def worker(wid):
        conn = ClientConnection(config.host, server.port)
        try:
            for i in range(REQUESTS_PER_WORKER):
                arch = archs[(wid * REQUESTS_PER_WORKER + i) % len(archs)]
                payload = {"arch": arch, "device": DEVICE, "metric": METRIC}
                t0 = time.perf_counter()
                status, _, body = await conn.request("POST", "/query", payload)
                latencies.append(time.perf_counter() - t0)
                assert status == 200, body
        finally:
            await conn.close()

    t0 = time.perf_counter()
    await asyncio.gather(*(worker(w) for w in range(workers)))
    wall = time.perf_counter() - t0
    stats = server.coalescer.stats()
    await server.stop()
    return latencies, wall, stats


def _summarise(latencies, wall):
    lat_ms = np.asarray(latencies) * 1e3
    return {
        "requests": len(latencies),
        "throughput_rps": round(len(latencies) / wall, 1),
        "p50_ms": round(float(np.percentile(lat_ms, 50)), 3),
        "p95_ms": round(float(np.percentile(lat_ms, 95)), 3),
        "p99_ms": round(float(np.percentile(lat_ms, 99)), 3),
    }


def test_serve_closed_loop_load():
    bench, archs = _build_bench()
    # Warm the surrogates so the first cell does not pay fit-cache costs.
    asyncio.run(_run_level(bench, archs, workers=2, coalesce=True))

    cells = {}
    batch_stats = {}
    for workers in CONCURRENCY_LEVELS:
        for coalesce in (False, True):
            latencies, wall, stats = asyncio.run(
                _run_level(bench, archs, workers, coalesce)
            )
            key = (workers, coalesce)
            cells[key] = _summarise(latencies, wall)
            batch_stats[key] = stats

    top = max(CONCURRENCY_LEVELS)
    on, off = cells[(top, True)], cells[(top, False)]
    gain = on["throughput_rps"] / off["throughput_rps"]
    grouped = batch_stats[(top, True)]
    mean_batch = grouped["items_total"] / max(1, grouped["flush_total"])
    # The coalescer must actually group concurrent queries at high
    # concurrency — the throughput gain itself is reported, not asserted,
    # to keep the bench robust on loaded CI machines.
    assert mean_batch > 1.5, grouped

    lines = [
        "Serving layer: closed-loop load, coalescing off vs on",
        f"  {'workers':>7}  {'coalesce':>8}  {'rps':>8}  "
        f"{'p50 ms':>8}  {'p95 ms':>8}  {'p99 ms':>8}",
    ]
    for workers in CONCURRENCY_LEVELS:
        for coalesce in (False, True):
            cell = cells[(workers, coalesce)]
            lines.append(
                f"  {workers:>7}  {'on' if coalesce else 'off':>8}  "
                f"{cell['throughput_rps']:>8.1f}  {cell['p50_ms']:>8.3f}  "
                f"{cell['p95_ms']:>8.3f}  {cell['p99_ms']:>8.3f}"
            )
    lines.append(
        f"  coalescing at {top} workers: mean batch {mean_batch:.2f}, "
        f"throughput gain {gain:.2f}x"
    )
    emit("bench_serve", "\n".join(lines))

    point = {"coalesce_gain": round(gain, 3), "mean_batch": round(mean_batch, 2)}
    for (workers, coalesce), cell in cells.items():
        tag = f"c{workers}_{'on' if coalesce else 'off'}"
        point[f"{tag}_rps"] = cell["throughput_rps"]
        point[f"{tag}_p50_ms"] = cell["p50_ms"]
        point[f"{tag}_p99_ms"] = cell["p99_ms"]
    record_trajectory("serve", point)
