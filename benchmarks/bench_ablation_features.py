"""Ablation: feature encoding (one-hot vs integer vs +global features).

DESIGN.md design choice: which architecture encoding should feed the
surrogates.  Expected shape: one-hot beats raw integers for tree ensembles;
adding derived global features (log-FLOPs/params) helps most on the accuracy
target whose dominant term is capacity.
"""

from conftest import emit

from repro.core.surrogate_fit import SurrogateFitter
from repro.experiments.common import format_table
from repro.searchspace.features import ENCODINGS, FeatureEncoder


def run_sweep(ctx) -> dict:
    acc = ctx.accuracy_dataset()
    thr = ctx.device_dataset("vck190", "throughput")
    rows = []
    for encoding in ENCODINGS:
        fitter = SurrogateFitter(encoder=FeatureEncoder(encoding))
        acc_report = fitter.fit(acc, "xgb")
        thr_report = fitter.fit(thr, "xgb")
        rows.append(
            {
                "encoding": encoding,
                "acc_tau": acc_report.kendall,
                "acc_r2": acc_report.r2,
                "thr_tau": thr_report.kendall,
                "thr_r2": thr_report.r2,
            }
        )
    return {"rows": rows}


def test_feature_encoding(benchmark, ctx):
    result = benchmark.pedantic(lambda: run_sweep(ctx), rounds=1, iterations=1)
    rows = result["rows"]
    table = format_table(
        ["encoding", "acc R2", "acc tau", "vck190-thr R2", "vck190-thr tau"],
        [
            [
                r["encoding"],
                f"{r['acc_r2']:.3f}",
                f"{r['acc_tau']:.3f}",
                f"{r['thr_r2']:.3f}",
                f"{r['thr_tau']:.3f}",
            ]
            for r in rows
        ],
    )
    emit("ablation_features", f"Ablation — feature encodings (XGB)\n{table}")
    by_enc = {r["encoding"]: r for r in rows}
    # Global capacity features help the accuracy surrogate.
    assert by_enc["onehot+global"]["acc_tau"] >= by_enc["onehot"]["acc_tau"] - 0.01
