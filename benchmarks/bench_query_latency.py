"""Bench: the zero-cost claim — benchmark queries answer in milliseconds.

The paper's pitch is that a surrogate query replaces hours of training and
measurement "within a few milliseconds".  This is the one true
microbenchmark in the harness: pytest-benchmark statistics over repeated
single-architecture queries.
"""

import pytest

from repro.searchspace.mnasnet import MnasNetSearchSpace


@pytest.fixture(scope="module")
def built(ctx):
    bench = ctx.benchmark()
    space = MnasNetSearchSpace(seed=99)
    archs = space.sample_batch(64, unique=True)
    return bench, archs


def test_accuracy_query_latency(benchmark, built):
    bench, archs = built
    state = {"i": 0}

    def query():
        state["i"] = (state["i"] + 1) % len(archs)
        return bench.query_accuracy(archs[state["i"]])

    value = benchmark(query)
    assert 0.5 < value < 0.9
    # Zero-cost: well under 50 ms per query even in pure Python.
    assert benchmark.stats["mean"] < 0.05


def test_biobjective_query_latency(benchmark, built):
    bench, archs = built
    state = {"i": 0}

    def query():
        state["i"] = (state["i"] + 1) % len(archs)
        return bench.query(archs[state["i"]], device="vck190")

    result = benchmark(query)
    assert result.performance > 0
    assert benchmark.stats["mean"] < 0.1
