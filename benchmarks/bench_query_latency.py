"""Bench: the zero-cost claim — benchmark queries answer in milliseconds.

The paper's pitch is that a surrogate query replaces hours of training and
measurement "within a few milliseconds".  This is the one true
microbenchmark in the harness: pytest-benchmark statistics over repeated
single-architecture queries.

``test_record_query_trajectory`` additionally appends a dated point to
``results/BENCH_query.json`` (via its own ``repro.obs.timer`` timing so it
also works under ``--benchmark-disable``), tracking query latency across PRs.
"""

import pytest

import repro.obs as obs

from repro.searchspace.mnasnet import MnasNetSearchSpace

from conftest import record_trajectory


@pytest.fixture(scope="module")
def built(ctx):
    bench = ctx.benchmark()
    space = MnasNetSearchSpace(seed=99)
    archs = space.sample_batch(64, unique=True)
    return bench, archs


def test_accuracy_query_latency(benchmark, built):
    bench, archs = built
    state = {"i": 0}

    def query():
        state["i"] = (state["i"] + 1) % len(archs)
        return bench.query_accuracy(archs[state["i"]])

    value = benchmark(query)
    assert 0.5 < value < 0.9
    # Zero-cost: well under 50 ms per query even in pure Python.
    # (stats is None under --benchmark-disable smoke runs.)
    if benchmark.stats:
        assert benchmark.stats["mean"] < 0.05


def test_biobjective_query_latency(benchmark, built):
    bench, archs = built
    state = {"i": 0}

    def query():
        state["i"] = (state["i"] + 1) % len(archs)
        return bench.query(archs[state["i"]], device="vck190")

    result = benchmark(query)
    assert result.performance > 0
    if benchmark.stats:
        assert benchmark.stats["mean"] < 0.1


def test_repeat_query_latency(benchmark, built):
    """Cache-hot path: re-querying a seen arch skips encoding entirely."""
    bench, archs = built
    arch = archs[0]
    bench.query_accuracy(arch)  # prime the encoder cache

    value = benchmark(lambda: bench.query_accuracy(arch))
    assert 0.5 < value < 0.9
    if benchmark.stats:
        assert benchmark.stats["mean"] < 0.05


def test_record_query_trajectory(built):
    """Append a dated latency point to results/BENCH_query.json."""
    bench, archs = built
    rounds = 50

    bench.encoder.cache_clear()
    with obs.timer() as warm_t:
        for _ in range(rounds):
            for arch in archs:
                bench.query_accuracy(arch)
    warm_mean = warm_t.seconds / (rounds * len(archs))

    bench.encoder.cache_clear()
    with obs.timer() as cold_t:
        for arch in archs:
            bench.query(arch, device="vck190")
    cold_bi_mean = cold_t.seconds / len(archs)

    info = bench.encoder.cache_info()
    record_trajectory(
        "query",
        {
            "accuracy_query_warm_mean_s": warm_mean,
            "biobjective_query_cold_mean_s": cold_bi_mean,
            "cache_hits": info["hits"],
            "cache_misses": info["misses"],
        },
    )
    assert warm_mean < 0.05
    assert cold_bi_mean < 0.1
