"""Bench: Figure 4 — bi-objective REINFORCE search on all six panels.

Paper shape: each panel's zero-cost search produces a dense accuracy-vs-
performance Pareto front spanning a genuine tradeoff, with hand-picked
solutions for Fig. 6.
"""

from conftest import BENCH_BUDGET, emit

from repro.experiments import fig4_biobjective


def test_fig4(benchmark, ctx, shared_results):
    result = benchmark.pedantic(
        lambda: fig4_biobjective.run(ctx=ctx, budget=BENCH_BUDGET),
        rounds=1,
        iterations=1,
    )
    shared_results["fig4"] = result
    emit("fig4_biobjective", fig4_biobjective.report(result))
    assert len(result["panels"]) == 6
    for key, panel in result["panels"].items():
        front = panel["pareto"]
        assert len(front) >= 3, key
        accs = [p["accuracy"] for p in front]
        perfs = [p["performance"] for p in front]
        assert max(accs) - min(accs) > 0.01, key
        assert max(perfs) / min(perfs) > 1.3, key
        assert 1 <= len(panel["picks"]) <= 3, key
