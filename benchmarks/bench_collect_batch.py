"""Bench: scalar per-arch collection vs the vectorised batch kernels.

Times accuracy and device collection over the same sample with the batch
kernels off and on (serial and with a thread pool), asserts the values are
bit-identical across all four paths (the determinism contract), and records
archs/s to ``results/BENCH_collect.json``.  The batch path must deliver at
least a 3x archs/s improvement over the scalar path on the same core count.
"""

import os

import numpy as np

import repro.obs as obs
from repro.core.dataset import (
    collect_accuracy_dataset,
    collect_device_dataset,
    sample_dataset_archs,
)
from repro.trainsim.schemes import P_STAR

from conftest import BENCH_ARCHS, emit, record_trajectory

COLLECT_ARCHS = min(600, BENCH_ARCHS)


def _time_accuracy(archs, batch, n_jobs):
    with obs.timer() as t:
        ds = collect_accuracy_dataset(archs, P_STAR, batch=batch, n_jobs=n_jobs)
    return ds, t.seconds


def _time_device(archs, batch, n_jobs):
    with obs.timer() as t:
        ds = collect_device_dataset(
            archs, "zcu102", "latency", batch=batch, n_jobs=n_jobs
        )
    return ds, t.seconds


def test_batch_collection_speed_and_equivalence():
    workers = max(2, os.cpu_count() or 1)
    archs = sample_dataset_archs(COLLECT_ARCHS, seed=13)

    # Warm shared caches (stage/timing tables, graph cache) so the scalar
    # and batch paths compete on steady-state throughput, not first-touch.
    collect_accuracy_dataset(archs[:4], P_STAR, batch=True)
    collect_device_dataset(archs[:4], "zcu102", "latency", batch=True)

    acc_scalar, acc_scalar_s = _time_accuracy(archs, False, 1)
    acc_batch, acc_batch_s = _time_accuracy(archs, True, 1)
    acc_batch_par, acc_batch_par_s = _time_accuracy(archs, True, workers)
    dev_scalar, dev_scalar_s = _time_device(archs, False, 1)
    dev_batch, dev_batch_s = _time_device(archs, True, 1)
    dev_batch_par, dev_batch_par_s = _time_device(archs, True, workers)

    assert np.array_equal(acc_scalar.values, acc_batch.values)
    assert np.array_equal(acc_scalar.values, acc_batch_par.values)
    assert np.array_equal(dev_scalar.values, dev_batch.values)
    assert np.array_equal(dev_scalar.values, dev_batch_par.values)

    n = len(archs)
    acc_speedup = acc_scalar_s / acc_batch_s
    dev_speedup = dev_scalar_s / dev_batch_s
    lines = [
        f"Collection: scalar loop vs batch kernels ({n} archs)",
        f"  accuracy  scalar       : {acc_scalar_s:7.2f} s "
        f"({n / acc_scalar_s:8.1f} archs/s)",
        f"  accuracy  batch        : {acc_batch_s:7.2f} s "
        f"({n / acc_batch_s:8.1f} archs/s, {acc_speedup:.1f}x)",
        f"  accuracy  batch x{workers:<2}    : {acc_batch_par_s:7.2f} s "
        f"({n / acc_batch_par_s:8.1f} archs/s)",
        f"  device    scalar       : {dev_scalar_s:7.2f} s "
        f"({n / dev_scalar_s:8.1f} archs/s)",
        f"  device    batch        : {dev_batch_s:7.2f} s "
        f"({n / dev_batch_s:8.1f} archs/s, {dev_speedup:.1f}x)",
        f"  device    batch x{workers:<2}    : {dev_batch_par_s:7.2f} s "
        f"({n / dev_batch_par_s:8.1f} archs/s)",
        "  values: bit-identical across all paths",
    ]
    emit("bench_collect_batch", "\n".join(lines))
    record_trajectory(
        "collect",
        {
            "num_archs": n,
            "n_jobs": workers,
            "acc_scalar_archs_per_s": n / acc_scalar_s,
            "acc_batch_archs_per_s": n / acc_batch_s,
            "acc_batch_parallel_archs_per_s": n / acc_batch_par_s,
            "dev_scalar_archs_per_s": n / dev_scalar_s,
            "dev_batch_archs_per_s": n / dev_batch_s,
            "dev_batch_parallel_archs_per_s": n / dev_batch_par_s,
        },
    )
    # Acceptance floor: the batch kernel must beat the scalar loop by >= 3x
    # on the accuracy hot path at equal core count.
    assert acc_speedup >= 3.0, f"batch speedup {acc_speedup:.2f}x < 3x"
