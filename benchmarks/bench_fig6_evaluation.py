"""Bench: Figure 6 — true evaluation of searched models vs known baselines.

Paper shape: the searched pareto picks, re-trained with the reference scheme
and measured on-device, compare favourably against EfficientNet-B0-class
baselines — e.g. the paper's vck190 pick gains +1.8% accuracy and +55%
throughput over B0 on the VCK190.
"""

from conftest import BENCH_BUDGET, emit

from repro.experiments import fig4_biobjective, fig6_evaluation


def test_fig6(benchmark, ctx, shared_results):
    def run():
        fig4_result = shared_results.get("fig4")
        if fig4_result is None:
            fig4_result = fig4_biobjective.run(ctx=ctx, budget=BENCH_BUDGET)
            shared_results["fig4"] = fig4_result
        return fig6_evaluation.run(ctx=ctx, fig4_result=fig4_result)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig6_evaluation", fig6_evaluation.report(result))
    assert len(result["panels"]) == 6
    dominated_panels = 0
    for key, panel in result["panels"].items():
        head = panel["headline_vs_b0"]
        assert head is not None, key
        if head["dominates_b0"]:
            dominated_panels += 1
    # On most devices a searched pick should dominate EfficientNet-B0
    # outright (the FPGA panels are the paper's headline examples).
    assert dominated_panels >= 4
