"""Bench: batched population queries vs the scalar query loop.

``query_accuracy_batch`` / ``query_batch`` serve a whole population through a
single encode + ensemble predict.  This bench measures both paths on the same
archs, checks they agree bitwise, and asserts the batched path actually pays
for itself (queries/sec speedup).  Timings use ``repro.obs.timer`` directly
so the speedup check also runs under ``--benchmark-disable`` smoke mode.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.searchspace.mnasnet import MnasNetSearchSpace

from conftest import emit, record_trajectory

POPULATION = 512


@pytest.fixture(scope="module")
def built(ctx):
    bench = ctx.benchmark()
    space = MnasNetSearchSpace(seed=77)
    archs = space.sample_batch(POPULATION, unique=True)
    return bench, archs


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        with obs.timer() as t:
            fn()
        best = min(best, t.seconds)
    return best


def test_batch_throughput_and_equivalence(benchmark, built):
    bench, archs = built

    # Warm both paths (fills the encoder cache so the comparison isolates
    # the predict layer, which is where batching matters).
    scalar_values = np.asarray([bench.query_accuracy(a) for a in archs])
    batched_values = benchmark(lambda: bench.query_accuracy_batch(archs))
    assert (batched_values == scalar_values).all()

    scalar_s = _time(lambda: [bench.query_accuracy(a) for a in archs])
    batch_s = _time(lambda: bench.query_accuracy_batch(archs))
    speedup = scalar_s / batch_s
    scalar_qps = POPULATION / scalar_s
    batch_qps = POPULATION / batch_s

    lines = [
        "Batched accuracy queries vs scalar loop "
        f"(population={POPULATION}, cache-hot)",
        f"  scalar loop : {scalar_s * 1e3:8.1f} ms  ({scalar_qps:10.0f} q/s)",
        f"  batched     : {batch_s * 1e3:8.1f} ms  ({batch_qps:10.0f} q/s)",
        f"  speedup     : {speedup:8.1f}x",
    ]
    emit("bench_query_batch", "\n".join(lines))
    record_trajectory(
        "query",
        {
            "population": POPULATION,
            "scalar_queries_per_s": scalar_qps,
            "batch_queries_per_s": batch_qps,
            "batch_speedup": speedup,
        },
    )
    # The scalar loop already rides this PR's cache + single-row fast path,
    # so the honest ratio is ~2x on one core; guard against regressing to
    # parity rather than asserting a machine-dependent multiple.
    assert speedup >= 1.3


def test_query_batch_biobjective_matches_scalar(built):
    bench, archs = built
    sample = archs[:64]
    batched = bench.query_batch(sample, device="vck190")
    singles = [bench.query(a, device="vck190") for a in sample]
    assert batched == singles
