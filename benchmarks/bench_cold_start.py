"""Bench: cold-start-to-first-query, JSON envelope vs columnar store.

The released artifact's real serving cost is how fast a *fresh process* can
answer its first query and how much private memory it pays to do so.  This
bench builds one benchmark (full device suite), saves it both ways, then
spawns a cold subprocess per format that loads the artifact, answers one
accuracy query, and reports elapsed time plus resident memory before/after.
The columnar store must be >= 5x faster to first query: the JSON path parses
every tree of every surrogate up front, the columnar path reads one manifest
and memmaps just the accuracy model's shards.

Also records the histogram-accumulation satellite: tree fits with the
default ``auto`` kernel (per-feature weighted ``bincount`` over
transposed-contiguous columns on large nodes, no flattened-code or
``np.repeat`` temporaries) vs the legacy flatten+``repeat`` pass forced
everywhere.  Trees are bit-identical between modes; the fit rows are
sized so the tree's upper levels actually cross the auto kernel's
node-size threshold.

Results append to ``results/BENCH_build.json``.
"""

import json
import os
import subprocess
import sys

import repro.obs as obs
import repro.surrogates.gbdt as gbdt
from repro.core.benchmark import AccelNASBench
from repro.core.dataset import sample_dataset_archs
from repro.surrogates.tree import GradientTreeBuilder
from repro.trainsim.schemes import P_STAR

from conftest import BENCH_ARCHS, emit, record_trajectory

COLD_ARCHS = min(400, BENCH_ARCHS)
COLD_RUNS = 3
# Histogram-kernel fit workload: rows must comfortably exceed the auto
# kernel's per-node crossover (tree.py _BINCOUNT_MIN_ROWS) for the top
# levels of every tree, or the two modes degenerate to the same kernel.
FIT_ROWS = 8192
FIT_TREES = 24
FIT_REPS = 3

_COLD_SCRIPT = """
import json, resource, sys, time
from repro.core.benchmark import AccelNASBench
from repro.searchspace.mnasnet import ArchSpec

path, arch = sys.argv[1], sys.argv[2]
rss_before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
start = time.perf_counter()
bench = AccelNASBench.load(path)
accuracy = bench.query_accuracy(ArchSpec.from_string(arch))
elapsed = time.perf_counter() - start
rss_after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({
    "seconds": elapsed,
    "rss_before_kb": rss_before,
    "rss_after_kb": rss_after,
    "accuracy": accuracy,
}))
"""


def _cold_start(artifact_path, arch) -> dict:
    """Best-of-N cold load+first-query in fresh subprocesses."""
    best = None
    for _ in range(COLD_RUNS):
        out = subprocess.run(
            [sys.executable, "-c", _COLD_SCRIPT, str(artifact_path), arch.to_string()],
            capture_output=True,
            text=True,
            check=True,
        )
        run = json.loads(out.stdout)
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    return best


def _fit_seconds(hist_mode: str, X, y) -> float:
    """Best-of-N XGB ensemble fit time with the given histogram kernel."""

    class _Builder(GradientTreeBuilder):
        def __init__(self, *args, **kwargs):
            kwargs["hist_mode"] = hist_mode
            super().__init__(*args, **kwargs)

    original = gbdt.GradientTreeBuilder
    gbdt.GradientTreeBuilder = _Builder
    try:
        best = None
        for _ in range(FIT_REPS):
            with obs.timer() as t:
                gbdt.XGBRegressor(
                    n_estimators=FIT_TREES, max_depth=8, seed=3
                ).fit(X, y)
            best = t.seconds if best is None else min(best, t.seconds)
    finally:
        gbdt.GradientTreeBuilder = original
    return best


def test_columnar_cold_start_and_fit_speedup(tmp_path):
    bench, _ = AccelNASBench.build(
        P_STAR,
        num_archs=COLD_ARCHS,
        sample_seed=17,
        n_jobs=max(2, os.cpu_count() or 1),
    )
    json_path = tmp_path / "anb.json"
    store_path = tmp_path / "anb.store"
    with obs.timer() as t_save_json:
        bench.save(json_path)
    with obs.timer() as t_save_store:
        bench.save(store_path, format="columnar")
    store_bytes = sum(
        p.stat().st_size for p in store_path.rglob("*") if p.is_file()
    )

    arch = sample_dataset_archs(1, seed=99)[0]
    cold_json = _cold_start(json_path, arch)
    cold_store = _cold_start(store_path, arch)
    # both formats answer the first query with the exact same bits
    assert cold_json["accuracy"] == cold_store["accuracy"]
    speedup = cold_json["seconds"] / cold_store["seconds"]
    assert speedup >= 5.0, (
        f"columnar cold start only {speedup:.1f}x faster "
        f"({cold_store['seconds']:.3f}s vs {cold_json['seconds']:.3f}s)"
    )

    # Satellite: adaptive bincount histograms vs legacy repeat+flatten.
    fit_archs = sample_dataset_archs(FIT_ROWS, seed=5)
    fit_X = bench.encoder.encode(fit_archs)
    fit_y = bench.query_accuracy_batch(fit_archs)
    fit_repeat_s = _fit_seconds("repeat", fit_X, fit_y)
    fit_auto_s = _fit_seconds("auto", fit_X, fit_y)

    lines = [
        f"Cold start to first query ({COLD_ARCHS} archs, "
        f"{len(bench.targets)} device targets + accuracy, best of {COLD_RUNS}):",
        f"  json     : {cold_json['seconds'] * 1e3:8.1f} ms, "
        f"rss {cold_json['rss_before_kb']} -> {cold_json['rss_after_kb']} kB, "
        f"{json_path.stat().st_size} bytes",
        f"  columnar : {cold_store['seconds'] * 1e3:8.1f} ms, "
        f"rss {cold_store['rss_before_kb']} -> {cold_store['rss_after_kb']} kB, "
        f"{store_bytes} bytes",
        f"  speedup  : {speedup:8.1f} x",
        f"  save     : json {t_save_json.seconds:.2f} s, "
        f"columnar {t_save_store.seconds:.2f} s",
        f"Histogram kernel ({FIT_TREES}-tree XGB fit on {FIT_ROWS} rows, "
        f"best of {FIT_REPS}):",
        f"  repeat   : {fit_repeat_s:8.2f} s",
        f"  auto     : {fit_auto_s:8.2f} s "
        f"({fit_repeat_s / fit_auto_s:.2f}x)",
    ]
    emit("bench_cold_start", "\n".join(lines))
    record_trajectory(
        "build",
        {
            "num_archs": COLD_ARCHS,
            "cold_start_json_s": cold_json["seconds"],
            "cold_start_columnar_s": cold_store["seconds"],
            "cold_start_speedup": speedup,
            "rss_delta_json_kb": cold_json["rss_after_kb"]
            - cold_json["rss_before_kb"],
            "rss_delta_columnar_kb": cold_store["rss_after_kb"]
            - cold_store["rss_before_kb"],
            "json_bytes": json_path.stat().st_size,
            "store_bytes": store_bytes,
            "fit_rows": FIT_ROWS,
            "fit_repeat_s": fit_repeat_s,
            "fit_auto_s": fit_auto_s,
            "fit_speedup": fit_repeat_s / fit_auto_s,
        },
    )
