"""Bench: benchmark-trustworthiness validation on unseen architectures.

Beyond Table 1's global metrics, a surrogate benchmark must rank the *top*
of the space correctly — that is the region NAS optimizers exploit.  This
bench validates the built benchmark on fresh (never-collected) architectures:
top-10% overlap, per-decile tau profile, and the simple-regret curve of
trusting the surrogate's picks.
"""

import numpy as np
from conftest import emit

from repro.core.analysis import decile_taus, regret_curve, validate_benchmark
from repro.experiments.common import format_table
from repro.searchspace.mnasnet import MnasNetSearchSpace
from repro.trainsim.schemes import P_STAR


def run_validation(ctx, num_archs: int = 600) -> dict:
    bench = ctx.benchmark()
    space = MnasNetSearchSpace(seed=2024)
    fresh = space.sample_batch(num_archs, unique=True)
    collected = set(ctx.archs)
    fresh = [a for a in fresh if a not in collected]
    report = validate_benchmark(bench, ctx.trainer, P_STAR, fresh)
    predicted = bench.query_accuracy_batch(fresh)
    true = [ctx.trainer.expected_top1(a, P_STAR) for a in fresh]
    return {
        "report": report,
        "deciles": decile_taus(true, predicted),
        "regret": regret_curve(true, predicted),
        "num_fresh": len(fresh),
    }


def test_benchmark_validation(benchmark, ctx):
    result = benchmark.pedantic(lambda: run_validation(ctx), rounds=1, iterations=1)
    report = result["report"]
    decile_row = " ".join(f"{t:.2f}" for t in result["deciles"])
    regret_rows = [
        [f"top-{k}", f"{r * 100:.2f}pp"] for k, r in sorted(result["regret"].items())
    ]
    text = "\n".join(
        [
            f"Benchmark validation on {result['num_fresh']} unseen archs",
            f"  global: {report.row()}",
            f"  per-decile tau (low->high true acc): {decile_row}",
            format_table(["surrogate picks", "simple regret"], regret_rows),
        ]
    )
    emit("validation_regret", text)
    assert report.kendall > 0.75
    assert report.top10_overlap > 0.4
    # Trusting the surrogate's top-25 loses less than 1pp of true accuracy.
    assert result["regret"][25] < 0.01
