"""Bench: serial vs parallel benchmark build (dataset collection + fitting).

``AccelNASBench.build`` fans per-(device, metric) collection and surrogate
fitting over a deterministic thread pool.  This bench times a full build
serially and with ``n_jobs`` workers, asserts the two produce byte-identical
saved artefacts (the determinism contract), and records the wall-times to
``results/BENCH_build.json``.  Speedup is hardware-dependent (a 1-core CI
runner shows none), so only equivalence is asserted.
"""

import os

import repro.obs as obs
from repro.core.benchmark import AccelNASBench
from repro.trainsim.schemes import P_STAR

from conftest import BENCH_ARCHS, emit, record_trajectory

BUILD_ARCHS = min(300, BENCH_ARCHS)
DEVICES = {"a100": ("throughput",), "zcu102": ("throughput", "latency")}


def _build(n_jobs, collect_n_jobs):
    with obs.timer() as t:
        bench, _ = AccelNASBench.build(
            P_STAR,
            num_archs=BUILD_ARCHS,
            devices=DEVICES,
            sample_seed=13,
            family="rf",
            n_jobs=n_jobs,
            collect_n_jobs=collect_n_jobs,
        )
    return bench, t.seconds


def test_parallel_build_equivalent_and_timed(tmp_path):
    workers = max(2, os.cpu_count() or 1)
    serial, serial_s = _build(1, 1)
    parallel, parallel_s = _build(workers, workers)

    p1, p2 = tmp_path / "serial.json", tmp_path / "parallel.json"
    serial.save(p1)
    parallel.save(p2)
    assert p1.read_bytes() == p2.read_bytes()

    lines = [
        f"Benchmark build: serial vs n_jobs={workers} "
        f"({BUILD_ARCHS} archs, {sum(len(m) for m in DEVICES.values())} "
        "device targets + accuracy)",
        f"  serial   : {serial_s:7.2f} s",
        f"  parallel : {parallel_s:7.2f} s",
        "  artefacts: byte-identical",
    ]
    emit("bench_build_parallel", "\n".join(lines))
    record_trajectory(
        "build",
        {
            "num_archs": BUILD_ARCHS,
            "n_jobs": workers,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
        },
    )


def test_parallel_collection_matches_serial_values():
    from repro.core.dataset import collect_device_dataset, sample_dataset_archs

    archs = sample_dataset_archs(64, seed=21)
    serial = collect_device_dataset(archs, "a100", "throughput")
    parallel = collect_device_dataset(archs, "a100", "throughput", n_jobs=4)
    assert (serial.values == parallel.values).all()
