"""Bench: legacy vs fused-partition tree engine — end-to-end surrogate fits.

Times ``SurrogateFitter.fit`` for every tree family under both growth engines
using the paper's hand-tuned Table-1 (accuracy) and Table-2 (device) configs,
asserts the golden contract (bit-identical models, so R2 / Kendall tau / MAE
agree exactly between engines), and records a fit/predict trajectory point to
``results/BENCH_fit.json``.

Headline: the deep-tree rf fits (Table configs: 100 trees, depth 16/18) are
where the partitioned engine concentrates its win (>=2x at paper scale —
legacy pays per-node Python for thousands of splits per tree, the fused
engine partitions rows in place and runs one staged kernel per level).  The
shallow boosting fits (depth 4-6) are bincount-bound, where both engines do
identical weighted-bincount volume, and land near parity.  Wall-clock
assertions therefore anchor on rf and only at >=2000 archs
(``ANB_BENCH_ARCHS``); small CI datasets exercise the equality contract only.
"""

import numpy as np

import repro.obs as obs
from repro.core.surrogate_fit import SurrogateFitter

from conftest import BENCH_ARCHS, emit, record_trajectory

FAMILIES = ("xgb", "lgb", "rf")
# Below this dataset size, fixed overheads swamp the engines and wall-clock
# ratios are meaningless; only the equality contract is asserted.
SPEEDUP_MIN_ARCHS = 2000
# Conservative floor for the rf headline (measured ~2x at paper scale) —
# leaves headroom for noisy shared CI runners.
RF_SPEEDUP_FLOOR = 1.4


def _timed_fit(fitter, dataset, family, features):
    with obs.timer() as t:
        report = fitter.fit(dataset, family, features=features)
    return report, t.seconds


def test_fit_engines_golden_and_timed(ctx):
    datasets = [
        ("acc", ctx.accuracy_dataset()),
        ("a100-tput", ctx.device_dataset("a100", "throughput")),
    ]
    legacy = SurrogateFitter(engine="legacy")
    fused = SurrogateFitter(engine="partition")

    lines = [
        f"Surrogate fit: legacy vs fused-partition engine "
        f"({BENCH_ARCHS} archs, Table-1/2 configs)"
    ]
    point = {"num_archs": BENCH_ARCHS}
    for tag, dataset in datasets:
        X = fused.encoder.encode(dataset.archs)
        for family in FAMILIES:
            rep_legacy, legacy_s = _timed_fit(legacy, dataset, family, X)
            rep_fused, fused_s = _timed_fit(fused, dataset, family, X)
            # Bit-identical trees => identical metrics, exactly.
            assert rep_fused.r2 == rep_legacy.r2
            assert rep_fused.kendall == rep_legacy.kendall
            assert rep_fused.mae == rep_legacy.mae

            with obs.timer() as t:
                pred = rep_fused.model.predict(X)
            assert np.array_equal(pred, rep_legacy.model.predict(X))

            speedup = legacy_s / fused_s if fused_s > 0 else float("inf")
            key = f"{tag}_{family}"
            point[f"{key}_legacy_s"] = legacy_s
            point[f"{key}_fused_s"] = fused_s
            point[f"{key}_speedup"] = speedup
            point[f"{key}_predict_s"] = t.seconds
            point[f"{key}_r2"] = rep_fused.r2
            point[f"{key}_kendall"] = rep_fused.kendall
            lines.append(
                f"  {tag:>9s} {family:>3s}: legacy={legacy_s:6.2f}s "
                f"fused={fused_s:6.2f}s speedup={speedup:4.2f}x "
                f"predict={t.seconds * 1e3:6.1f}ms "
                f"R2={rep_fused.r2:.3f} tau={rep_fused.kendall:.3f}"
            )
            if family == "rf" and BENCH_ARCHS >= SPEEDUP_MIN_ARCHS:
                assert speedup >= RF_SPEEDUP_FLOOR, (
                    f"rf {tag} fit speedup {speedup:.2f}x below floor "
                    f"{RF_SPEEDUP_FLOOR}x"
                )

    legacy_total = sum(v for k, v in point.items() if k.endswith("_legacy_s"))
    fused_total = sum(v for k, v in point.items() if k.endswith("_fused_s"))
    point["aggregate_speedup"] = legacy_total / fused_total
    lines.append(
        f"  aggregate: legacy={legacy_total:.2f}s fused={fused_total:.2f}s "
        f"speedup={point['aggregate_speedup']:.2f}x"
    )
    emit("bench_fit", "\n".join(lines))
    record_trajectory("fit", point)
