"""Bench: Figure 3 — validation of p* on 120 unseen models, 3 seeds each.

Paper: validation tau = 0.926 between mean accuracies under p* and the
reference scheme.
"""

from conftest import emit

from repro.experiments import fig3_proxy_validation


def test_fig3_validation(benchmark):
    result = benchmark.pedantic(
        lambda: fig3_proxy_validation.run(num_archs=120, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    emit("fig3_proxy_validation", fig3_proxy_validation.report(result))
    # Shape check: strong rank correlation, in the paper's regime.
    assert result["tau"] >= 0.85
