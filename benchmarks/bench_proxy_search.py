"""Bench: section 3.2 — the training-proxy grid search (Eq. 1).

Regenerates the headline methodology result: a proxified scheme p* several
times cheaper than the reference with Kendall tau ~0.94 on the n=20 grid,
under the t_spec = 3 GPU-hour constraint.
"""

from conftest import emit

from repro.experiments import proxy_search_run


def test_proxy_search(benchmark):
    result = benchmark.pedantic(
        lambda: proxy_search_run.run(t_spec=3.0, early_stop_tau=0.94),
        rounds=1,
        iterations=1,
    )
    emit("proxy_search", proxy_search_run.report(result))
    assert result["tau"] >= 0.9
    assert result["speedup"] >= 3.0
    assert result["mean_hours"] <= 3.0
